// Observability layer tests (obs/obs.h, obs/metrics.h, obs/perfetto.h):
//
//   * span-tree well-formedness — per process, spans form a properly
//     nested forest (children inside parents, siblings non-overlapping);
//   * counter exactness — hand-scheduled trials whose every operation is
//     known in advance must produce exactly the predicted counters;
//   * zero observable footprint — a bench cell run with observation off
//     serializes byte-identically to the recorded seed goldens, with no
//     "obs" key in the JSON;
//   * exporter validity — the Perfetto trace_event document parses as
//     JSON and its depth-1 span ops sum to the trial's step count;
//   * schema v3.2 round-trip — the "obs" block survives dump + parse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"
#include "core/ratifier/quorum_ratifier.h"
#include "obs/perfetto.h"
#include "sim/adversaries/adversaries.h"

namespace modcon::analysis {
namespace {

using sim::sim_env;

sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

sim_object_builder binary_ratifier() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<quorum_ratifier<sim_env>>(mem,
                                                      make_binary_quorums());
  };
}

sim_object_builder consensus_stack() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

std::uint64_t counter_of(const obs::trial_obs& o, obs::counter c) {
  return o.counters[static_cast<std::size_t>(c)];
}

// Per-process structural invariants of the merged span forest: parents
// precede and enclose their children (in both the timeline and the
// per-process op counter), depths match the parent chain, and siblings
// under one parent do not overlap in ops.
void check_well_formed(const obs::trial_obs& o) {
  std::map<process_id, std::vector<const obs::span*>> by_pid;
  for (const obs::span& s : o.spans) {
    ASSERT_LT(s.pid, o.n);
    ASSERT_TRUE(s.closed) << "span " << s.id << " never closed";
    ASSERT_LE(s.ops_begin, s.ops_end);
    ASSERT_LE(s.t_begin, s.t_end);
    ASSERT_LT(s.name, o.names.size());
    if (s.parent == obs::kNoSpan) {
      EXPECT_EQ(s.depth, 0) << "root span with nonzero depth";
    } else {
      ASSERT_LT(s.parent, o.spans.size());
      const obs::span& p = o.spans[s.parent];
      EXPECT_EQ(p.pid, s.pid) << "parent on a different process";
      EXPECT_EQ(s.depth, p.depth + 1);
      EXPECT_GE(s.ops_begin, p.ops_begin);
      EXPECT_LE(s.ops_end, p.ops_end);
      EXPECT_GE(s.t_begin, p.t_begin);
      EXPECT_LE(s.t_end, p.t_end);
    }
    by_pid[s.pid].push_back(&s);
  }
  // Siblings (same pid, same parent) must not overlap in individual work.
  for (auto& [pid, spans] : by_pid) {
    std::map<std::uint32_t, std::vector<const obs::span*>> children;
    for (const obs::span* s : spans) children[s->parent].push_back(s);
    for (auto& [parent, sibs] : children) {
      std::sort(sibs.begin(), sibs.end(),
                [](const obs::span* a, const obs::span* b) {
                  return a->ops_begin < b->ops_begin;
                });
      for (std::size_t i = 1; i < sibs.size(); ++i)
        EXPECT_LE(sibs[i - 1]->ops_end, sibs[i]->ops_begin)
            << "sibling spans overlap on pid " << pid;
    }
  }
}

// Sum of per-process individual work charged to depth-1 spans — for a
// consensus stack these are the stage/round spans, so the sum must equal
// the trial's total work (every operation happens inside some round).
std::uint64_t depth1_ops(const obs::trial_obs& o) {
  std::uint64_t sum = 0;
  for (const obs::span& s : o.spans)
    if (s.depth == 1) sum += s.ops();
  return sum;
}

TEST(ObsSpans, TreeWellFormedOnConsensusStack) {
  trial_grid cell;
  cell.label = "obs_tree";
  cell.build = consensus_stack();
  cell.n = 4;
  cell.base_seed = 0x0b5;
  trial_record rec = run_traced_trial(cell, 0);
  ASSERT_TRUE(rec.result.obs.has_value());
  const obs::trial_obs& o = *rec.result.obs;
  ASSERT_GT(o.spans.size(), 0u);
  EXPECT_EQ(o.span_count, o.spans.size());
  EXPECT_FALSE(o.truncated);
  check_well_formed(o);
  // Exactly one root (object) span per process, covering all of its work.
  std::vector<int> roots(cell.n, 0);
  for (const obs::span& s : o.spans)
    if (s.parent == obs::kNoSpan) {
      ++roots[s.pid];
      EXPECT_EQ(s.kind, obs::span_kind::object);
      EXPECT_EQ(s.ops_begin, 0u);
    }
  for (std::size_t pid = 0; pid < cell.n; ++pid)
    EXPECT_EQ(roots[pid], 1) << "pid " << pid;
}

TEST(ObsSpans, StageOpsSumToTrialSteps) {
  trial_grid cell;
  cell.label = "obs_sum";
  cell.build = consensus_stack();
  cell.n = 8;
  cell.base_seed = 0x5u;
  trial_record rec = run_traced_trial(cell, 3);
  ASSERT_TRUE(rec.result.obs.has_value());
  ASSERT_EQ(rec.result.status, sim::run_status::all_halted);
  // In the sim backend one step is one shared-memory operation, so the
  // per-stage step totals must sum to the trial's recorded step count.
  EXPECT_EQ(depth1_ops(*rec.result.obs), rec.result.steps);
  EXPECT_EQ(rec.result.steps, rec.result.total_ops);
}

// n = 1 impatient conciliator: the write probability saturates to 1, so
// the whole trial is deterministic — read ⊥, write (certain), read own
// value, return.  Every counter is known exactly.
TEST(ObsCounters, ExactOnHandScheduledConciliator) {
  sim::fixed_order adv(sim::fixed_order::mode::sequential);
  trial_options opts;
  opts.observe = true;
  auto res = run_object_trial(impatient(), {0}, adv, opts);
  ASSERT_EQ(res.status, sim::run_status::all_halted);
  EXPECT_EQ(res.total_ops, 3u);
  ASSERT_TRUE(res.obs.has_value());
  const obs::trial_obs& o = *res.obs;
  EXPECT_EQ(counter_of(o, obs::counter::reads), 2u);
  EXPECT_EQ(counter_of(o, obs::counter::writes), 1u);
  EXPECT_EQ(counter_of(o, obs::counter::prob_writes), 0u);  // p saturated
  EXPECT_EQ(counter_of(o, obs::counter::prob_write_misses), 0u);
  EXPECT_EQ(counter_of(o, obs::counter::conciliator_attempts), 1u);
  EXPECT_EQ(counter_of(o, obs::counter::first_mover_wins), 0u);
  EXPECT_EQ(counter_of(o, obs::counter::ratified), 0u);
  EXPECT_EQ(counter_of(o, obs::counter::adopted), 0u);
  EXPECT_EQ(o.regs.reads, 2u);
  EXPECT_EQ(o.regs.writes_applied, 1u);
  EXPECT_EQ(o.regs.writes_missed, 0u);
  EXPECT_EQ(o.regs.lost_overwrites, 0u);
  EXPECT_EQ(o.regs.registers_touched, 1u);
  EXPECT_EQ(o.regs.max_writes_one_reg, 1u);
  // Span tree: object root + conciliator child, both spanning all 3 ops.
  ASSERT_EQ(o.spans.size(), 2u);
  check_well_formed(o);
  for (const obs::span& s : o.spans) {
    EXPECT_EQ(s.ops_begin, 0u);
    EXPECT_EQ(s.ops_end, 3u);
    EXPECT_EQ(s.draws(), 0u);  // certain write: no RNG draw
  }
  ASSERT_EQ(o.stages_to_decision.size(), 1u);
  EXPECT_EQ(o.stages_to_decision[0], 1u);
}

// n = 2 binary quorum ratifier under the sequential schedule: process 0
// runs to completion (announce, propose 0, read an empty read-quorum —
// ratify), then process 1 (announce 1, adopt proposal 0, see its own
// announcement in R_0 — adopt).  7 operations, all deterministic.
TEST(ObsCounters, ExactOnHandScheduledRatifier) {
  sim::fixed_order adv(sim::fixed_order::mode::sequential);
  trial_options opts;
  opts.observe = true;
  auto res = run_object_trial(binary_ratifier(), {0, 1}, adv, opts);
  ASSERT_EQ(res.status, sim::run_status::all_halted);
  EXPECT_EQ(res.total_ops, 7u);
  ASSERT_TRUE(res.obs.has_value());
  const obs::trial_obs& o = *res.obs;
  EXPECT_EQ(counter_of(o, obs::counter::reads), 4u);
  EXPECT_EQ(counter_of(o, obs::counter::writes), 3u);
  EXPECT_EQ(counter_of(o, obs::counter::ratified), 1u);
  EXPECT_EQ(counter_of(o, obs::counter::adopted), 1u);
  EXPECT_EQ(counter_of(o, obs::counter::conciliator_attempts), 0u);
  EXPECT_EQ(o.regs.reads, 4u);
  EXPECT_EQ(o.regs.writes_applied, 3u);
  EXPECT_EQ(o.regs.lost_overwrites, 0u);
  EXPECT_EQ(o.regs.registers_touched, 3u);
  EXPECT_EQ(o.regs.max_writes_one_reg, 1u);
  check_well_formed(o);
  // Outcomes recorded on the ratifier spans: one ratify, one adopt, both
  // with preference 0.
  int ratify_spans = 0, adopt_spans = 0;
  for (const obs::span& s : o.spans) {
    if (s.kind != obs::span_kind::ratifier) continue;
    ASSERT_TRUE(s.has_outcome);
    EXPECT_EQ(s.outcome_value, 0u);
    (s.outcome_decide ? ratify_spans : adopt_spans)++;
  }
  EXPECT_EQ(ratify_spans, 1);
  EXPECT_EQ(adopt_spans, 1);
}

// --- zero-footprint lock against the recorded seed goldens -------------
//
// The serialization below must stay byte-identical to
// perf_determinism_test.cpp's: both lock the same golden files.

void put_decided_list(std::ostream& os, const std::vector<decided>& xs) {
  os << "[";
  const char* sep = "";
  for (const decided& d : xs) {
    os << sep << (d.decide ? 1 : 0) << ":" << d.value;
    sep = ",";
  }
  os << "]";
}

template <typename T>
void put_list(std::ostream& os, const std::vector<T>& xs) {
  os << "[";
  const char* sep = "";
  for (const T& x : xs) {
    os << sep << x;
    sep = ",";
  }
  os << "]";
}

std::string serialize(const summary_stats& s) {
  std::ostringstream os;
  os << "cell " << s.label << " n=" << s.n << " trials=" << s.trials << "\n";
  for (const trial_record& r : s.records) {
    os << "trial=" << r.trial_index << " seed=" << r.seed
       << " status=" << static_cast<int>(r.result.status);
    os << " outputs=";
    put_decided_list(os, r.result.outputs);
    os << " halted=";
    put_list(os, r.result.halted_pids);
    os << " crashed=";
    put_list(os, r.result.crashed_pids);
    os << " crashed_outputs=";
    put_decided_list(os, r.result.crashed_outputs);
    os << " restarted=";
    put_list(os, r.result.restarted_pids);
    os << " restarts=" << r.result.restarts
       << " stale_reads=" << r.result.stale_reads
       << " omitted_writes=" << r.result.omitted_writes
       << " total_ops=" << r.result.total_ops
       << " max_individual_ops=" << r.result.max_individual_ops
       << " steps=" << r.result.steps << " registers=" << r.result.registers
       << " valid=" << r.valid << " agreement=" << r.agreement
       << " coherent=" << r.coherent << " decided_all=" << r.decided_all
       << "\n";
  }
  summary_stats pinned = s;
  clear_timing_measurements(pinned);
  os << to_json(pinned, /*include_records=*/false).dump(2) << "\n";
  return os.str();
}

TEST(ObsFootprint, TracingOffMatchesSeedGoldenByteForByte) {
  trial_grid cell;
  cell.label = "golden_e1_conciliator";
  cell.build = impatient();
  cell.n = 8;
  cell.trials = 48;
  cell.base_seed = 0xe1;
  cell.keep_records = true;
  ASSERT_FALSE(cell.observe);  // tracing off is the default

  summary_stats s = run_experiment(cell, {.threads = 1});
  // No "obs" key anywhere in the document when observation is off.
  summary_stats pinned = s;
  clear_timing_measurements(pinned);
  EXPECT_EQ(to_json(pinned).find("obs"), nullptr);

  const std::string path =
      std::string(MODCON_GOLDEN_DIR) + "/golden_e1_conciliator.txt";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(serialize(s), want.str())
      << "tracing-off run diverged from the recorded golden";
}

// --- Perfetto exporter -------------------------------------------------

TEST(ObsPerfetto, ExportIsValidJsonAndOpsSumToSteps) {
  trial_grid cell;
  cell.label = "obs_perfetto";
  cell.build = consensus_stack();
  cell.n = 4;
  cell.base_seed = 0xfe77;
  trial_record rec = run_traced_trial(cell, 0);
  ASSERT_TRUE(rec.result.obs.has_value());

  obs::perfetto_meta meta;
  meta.label = cell.label;
  meta.seed = rec.seed;
  meta.n = cell.n;
  meta.steps = rec.result.steps;
  std::ostringstream out;
  obs::write_perfetto(out, *rec.result.obs, meta);

  json doc;
  ASSERT_NO_THROW(doc = json::parse(out.str())) << out.str().substr(0, 400);
  const json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  const json* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("seed")->as_uint(), rec.seed);
  EXPECT_EQ(other->find("steps")->as_uint(), rec.result.steps);

  std::uint64_t depth1 = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json& e = events->at(i);
    const std::string& ph = e.find("ph")->as_string();
    if (ph != "X") continue;  // metadata events carry no spans
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    const json* args = e.find("args");
    ASSERT_NE(args, nullptr);
    if (args->find("depth")->as_uint() == 1)
      depth1 += args->find("ops")->as_uint();
  }
  EXPECT_EQ(depth1, rec.result.steps)
      << "per-stage step totals must sum to the trial's step count";
}

// --- schema v3.2 "obs" block round-trip --------------------------------

TEST(ObsSchema, V32BlockRoundTripsThroughDumpAndParse) {
  trial_grid cell;
  cell.label = "obs_roundtrip";
  cell.build = consensus_stack();
  cell.n = 4;
  cell.trials = 16;
  cell.base_seed = 0x32;
  cell.observe = true;
  summary_stats s = run_experiment(cell, {.threads = 2});
  ASSERT_EQ(s.obs.trials, 16u);

  json doc = to_json(s);
  json back;
  ASSERT_NO_THROW(back = json::parse(doc.dump(2)));
  const json* ob = back.find("obs");
  ASSERT_NE(ob, nullptr) << "observed cell must carry the v3.2 obs block";
  EXPECT_EQ(ob->find("trials")->as_uint(), s.obs.trials);
  EXPECT_EQ(ob->find("truncated")->as_uint(), s.obs.truncated);
  const json* counters = ob->find("counters");
  ASSERT_NE(counters, nullptr);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const json* c =
        counters->find(obs::to_string(static_cast<obs::counter>(i)));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->as_uint(), s.obs.counters[i]);
  }
  const json* regs = ob->find("registers");
  ASSERT_NE(regs, nullptr);
  EXPECT_EQ(regs->find("reads")->as_uint(), s.obs.reg_reads);
  EXPECT_EQ(regs->find("writes_applied")->as_uint(), s.obs.reg_writes_applied);
  EXPECT_EQ(regs->find("lost_overwrites")->as_uint(), s.obs.lost_overwrites);
  const json* coin = ob->find("coin");
  ASSERT_NE(coin, nullptr);
  EXPECT_EQ(coin->find("conciliator_invocations")->as_uint(),
            s.obs.conciliator_invocations);
  EXPECT_EQ(coin->find("conciliator_agreed")->as_uint(),
            s.obs.conciliator_agreed);
  const json* stages = ob->find("stages_to_decision");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->find("count")->as_uint(), s.obs.stages_to_decision.count);
  EXPECT_EQ(ob->find("spans_per_trial")->find("count")->as_uint(),
            s.obs.spans_per_trial.count);
  // Aggregation sanity: every trial ran n processes through at least one
  // ratifier round, so counters cannot all be zero.
  EXPECT_GT(s.obs.counters[static_cast<std::size_t>(obs::counter::reads)],
            0u);
  EXPECT_GT(s.obs.reg_writes_applied, 0u);
}

// Determinism: observation must not perturb any deterministic field, and
// the obs aggregates themselves must be thread-count independent.
TEST(ObsSchema, ObserveOnIsDeterministicAcrossThreadCounts) {
  trial_grid cell;
  cell.label = "obs_threads";
  cell.build = consensus_stack();
  cell.n = 4;
  cell.trials = 24;
  cell.base_seed = 0x7ead5;
  cell.observe = true;
  summary_stats one = run_experiment(cell, {.threads = 1});
  summary_stats eight = run_experiment(cell, {.threads = 8});
  clear_timing_measurements(one);
  clear_timing_measurements(eight);
  EXPECT_EQ(to_json(one).dump(2), to_json(eight).dump(2));

  // And against the same cell unobserved: identical outside "obs"/perf.
  trial_grid off = cell;
  off.observe = false;
  summary_stats dark = run_experiment(off, {.threads = 1});
  clear_timing_measurements(dark);
  EXPECT_EQ(dark.total_ops.mean, one.total_ops.mean);
  EXPECT_EQ(dark.steps.p99, one.steps.p99);
  EXPECT_EQ(dark.agreed, one.agreed);
  EXPECT_EQ(to_json(dark).find("obs"), nullptr);
}

// --- rt backend smoke --------------------------------------------------

TEST(ObsRt, RecordsSpansAndCountersOnRealThreads) {
  rt_object_builder build = [](address_space& mem, std::size_t) {
    return make_impatient_consensus<rt::rt_env>(mem, make_binary_quorums());
  };
  rt_trial_options opts;
  opts.seed = 0x17;
  opts.observe = true;
  auto res = run_rt_object_trial(build, {0, 1, 0, 1}, opts);
  ASSERT_EQ(res.status, sim::run_status::all_halted);
  ASSERT_TRUE(res.obs.has_value());
  const obs::trial_obs& o = *res.obs;
  ASSERT_GT(o.spans.size(), 0u);
  check_well_formed(o);
  EXPECT_GT(counter_of(o, obs::counter::reads), 0u);
  EXPECT_GT(counter_of(o, obs::counter::writes), 0u);
  // All work happens inside round spans here too (total_ops is the sum
  // of the per-process op counters on this backend).
  EXPECT_EQ(depth1_ops(o), res.total_ops);
  // No execution trace on rt: the per-register contention fields stay 0.
  EXPECT_EQ(o.regs.registers_touched, 0u);
}

}  // namespace
}  // namespace modcon::analysis
