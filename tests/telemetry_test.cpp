// The grid-scale telemetry bus (obs/telemetry.h): bucketing, sink/bus
// folding, the JSONL writer's schema, thread-count invariance and the
// shard-sum contract, artifact byte-identity with the bus on vs off,
// exact batch-interpreter accounting on a hand-scheduled cell, multi
// slot counters, and the Perfetto counter-track export.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/batch_engine.h"
#include "analysis/experiment.h"
#include "analysis/json_writer.h"
#include "analysis/multi.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/stack_spec.h"
#include "obs/perfetto.h"

namespace modcon::obs {
namespace {

using analysis::engine_kind;
using analysis::experiment_options;
using analysis::summary_stats;
using analysis::trial_grid;
using sim::sim_env;

std::uint64_t get(const telemetry_snapshot& snap, tcounter c) {
  return snap.counters[static_cast<std::size_t>(c)];
}

const log_histogram& hist(const telemetry_snapshot& snap, thist h) {
  return snap.hists[static_cast<std::size_t>(h)];
}

trial_grid conciliator_cell(impatience_schedule sched = {},
                            std::size_t n = 8, std::size_t trials = 25) {
  return {
      .label = "telemetry_cell",
      .build =
          [sched](address_space& mem, std::size_t) {
            return std::make_unique<impatient_conciliator<sim_env>>(
                mem, sched, /*detect=*/false);
          },
      .n = n,
      .trials = trials,
      .base_seed = 17,
      .keep_records = true,
      .batch_hint = analysis::batch_impatient(sched, false),
  };
}

std::uint64_t total_record_steps(const summary_stats& s) {
  std::uint64_t steps = 0;
  for (const auto& rec : s.records) steps += rec.result.steps;
  return steps;
}

// --- bucketing -----------------------------------------------------------

TEST(HistBucket, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 4; ++v)
    EXPECT_EQ(hist_bucket(v), v) << v;
}

TEST(HistBucket, LowerBoundRoundTrips) {
  for (std::uint32_t b = 0; b < 200; ++b)
    EXPECT_EQ(hist_bucket(hist_bucket_lo(b)), b) << b;
}

TEST(HistBucket, MonotoneAndWithinQuarter) {
  std::uint32_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    const std::uint32_t b = hist_bucket(v);
    EXPECT_GE(b, prev);
    prev = b;
    // The bucket's lower bound is never more than ~25% below the value.
    EXPECT_LE(hist_bucket_lo(b), v);
    if (v >= 4) {
      EXPECT_GE(hist_bucket_lo(b) * 5 / 4 + 1, v * 4 / 5);
    }
  }
}

TEST(LogHistogram, RecordMergeQuantile) {
  log_histogram a;
  for (std::uint64_t v : {1ull, 2ull, 100ull, 100ull, 5000ull}) a.record(v);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.sum, 5203u);
  EXPECT_EQ(a.max, 5000u);
  log_histogram b;
  b.record(7);
  b += a;
  EXPECT_EQ(b.count, 6u);
  EXPECT_EQ(b.sum, 5210u);
  EXPECT_EQ(b.max, 5000u);
  // Nearest-rank at the bucket's lower bound: the median of a lands in
  // 100's bucket.
  EXPECT_EQ(a.quantile(0.5), hist_bucket_lo(hist_bucket(100)));
  EXPECT_EQ(a.quantile(1.0), hist_bucket_lo(hist_bucket(5000)));
}

// --- sink / bus / install ------------------------------------------------

TEST(TelemetryBus, SnapshotFoldsEverySink) {
  telemetry_bus bus(4);
  ASSERT_EQ(bus.slots(), 4u);
  bus.sink(0).add(tcounter::trials_completed, 3);
  bus.sink(2).add(tcounter::trials_completed, 4);
  bus.sink(1).record(thist::trial_steps, 10);
  bus.sink(3).record(thist::trial_steps, 20);
  bus.sink(0).cell("cell/a", 2, 100);
  bus.sink(3).cell("cell/a", 1, 50);
  bus.sink(3).cell("cell/b", 5, 500);
  const telemetry_snapshot snap = bus.snapshot();
  EXPECT_EQ(get(snap, tcounter::trials_completed), 7u);
  EXPECT_EQ(hist(snap, thist::trial_steps).count, 2u);
  EXPECT_EQ(hist(snap, thist::trial_steps).sum, 30u);
  ASSERT_EQ(snap.cells.size(), 2u);  // label-sorted, merged
  EXPECT_EQ(snap.cells[0].first, "cell/a");
  EXPECT_EQ(snap.cells[0].second.trials, 3u);
  EXPECT_EQ(snap.cells[0].second.steps, 150u);
  EXPECT_EQ(snap.cells[1].first, "cell/b");
}

TEST(TelemetryBus, SinkMergeFoldsLocalHistogram) {
  telemetry_bus bus(1);
  log_histogram local;
  local.record(4);
  local.record(4);
  local.record(9);
  bus.sink(0).merge(thist::batch_occupancy, local);
  const telemetry_snapshot snap = bus.snapshot();
  EXPECT_EQ(hist(snap, thist::batch_occupancy).count, 3u);
  EXPECT_EQ(hist(snap, thist::batch_occupancy).sum, 17u);
  EXPECT_EQ(hist(snap, thist::batch_occupancy).max, 9u);
}

TEST(TelemetryInstall, TlSinkResolvesOnlyWhileInstalled) {
  EXPECT_EQ(tl_sink(), nullptr);
  telemetry_bus bus(2);
  {
    telemetry_install install(bus);
    telemetry_sink* ts = tl_sink();
    ASSERT_NE(ts, nullptr);
    ts->add(tcounter::steps, 42);
  }
  EXPECT_EQ(tl_sink(), nullptr);
  EXPECT_EQ(get(bus.snapshot(), tcounter::steps), 42u);
}

// --- engine instrumentation ---------------------------------------------

TEST(TelemetryEngine, ScalarRunCountsTrialsStepsAndCells) {
  const trial_grid cell = conciliator_cell();
  telemetry_bus bus;
  summary_stats s;
  {
    telemetry_install install(bus);
    s = analysis::run_experiment(cell, {});
  }
  const telemetry_snapshot snap = bus.snapshot();
  EXPECT_EQ(get(snap, tcounter::trials_planned), cell.trials);
  EXPECT_EQ(get(snap, tcounter::trials_started), cell.trials);
  EXPECT_EQ(get(snap, tcounter::trials_completed), cell.trials);
  EXPECT_EQ(get(snap, tcounter::steps), total_record_steps(s));
  EXPECT_EQ(hist(snap, thist::trial_steps).count, cell.trials);
  EXPECT_EQ(hist(snap, thist::trial_steps).sum, total_record_steps(s));
  ASSERT_EQ(snap.cells.size(), 1u);
  EXPECT_EQ(snap.cells[0].first, cell.label);
  EXPECT_EQ(snap.cells[0].second.trials, cell.trials);
  EXPECT_EQ(snap.cells[0].second.steps, total_record_steps(s));
}

// Deterministic counters must not depend on how trials land on worker
// threads (timing histograms are excluded from this contract).
TEST(TelemetryEngine, DeterministicCountersAreThreadCountInvariant) {
  const trial_grid cell = conciliator_cell();
  telemetry_snapshot snaps[2];
  const std::size_t threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    telemetry_bus bus;
    telemetry_install install(bus);
    experiment_options opts;
    opts.threads = threads[i];
    analysis::run_experiment(cell, opts);
    snaps[i] = bus.snapshot();
  }
  for (tcounter c : {tcounter::trials_planned, tcounter::trials_completed,
                     tcounter::steps, tcounter::total_ops})
    EXPECT_EQ(get(snaps[0], c), get(snaps[1], c)) << to_string(c);
  EXPECT_EQ(hist(snaps[0], thist::trial_steps).sum,
            hist(snaps[1], thist::trial_steps).sum);
  EXPECT_EQ(hist(snaps[0], thist::trial_steps).buckets,
            hist(snaps[1], thist::trial_steps).buckets);
  ASSERT_EQ(snaps[0].cells.size(), snaps[1].cells.size());
  EXPECT_EQ(snaps[0].cells[0].second.steps, snaps[1].cells[0].second.steps);
}

// Two shard slices of the same cell must sum to the single-process
// totals — the property grid_runner.py's live merge relies on.
TEST(TelemetryEngine, ShardCountersSumToSingleProcessTotals) {
  const trial_grid cell = conciliator_cell();
  telemetry_bus whole_bus;
  {
    telemetry_install install(whole_bus);
    analysis::run_experiment(cell, {});
  }
  telemetry_snapshot shard_snaps[2];
  for (std::size_t i = 0; i < 2; ++i) {
    telemetry_bus bus;
    telemetry_install install(bus);
    experiment_options opts;
    opts.shard_index = i;
    opts.shard_count = 2;
    analysis::run_experiment(cell, opts);
    shard_snaps[i] = bus.snapshot();
  }
  const telemetry_snapshot whole = whole_bus.snapshot();
  for (tcounter c : {tcounter::trials_planned, tcounter::trials_completed,
                     tcounter::steps, tcounter::total_ops}) {
    EXPECT_EQ(get(whole, c), get(shard_snaps[0], c) + get(shard_snaps[1], c))
        << to_string(c);
  }
  const log_histogram& w = hist(whole, thist::trial_steps);
  log_histogram merged = hist(shard_snaps[0], thist::trial_steps);
  merged += hist(shard_snaps[1], thist::trial_steps);
  EXPECT_EQ(w.count, merged.count);
  EXPECT_EQ(w.sum, merged.sum);
  EXPECT_EQ(w.max, merged.max);
  EXPECT_EQ(w.buckets, merged.buckets);
}

// Telemetry is a side channel: the artifact JSON must be byte-identical
// with the bus installed or absent (the --deterministic CI diff).
TEST(TelemetryEngine, ArtifactBytesUnchangedByTelemetry) {
  const trial_grid cell = conciliator_cell();
  summary_stats without = analysis::run_experiment(cell, {});
  summary_stats with;
  {
    telemetry_bus bus;
    telemetry_install install(bus);
    with = analysis::run_experiment(cell, {});
  }
  analysis::clear_timing_measurements(without);
  analysis::clear_timing_measurements(with);
  EXPECT_EQ(analysis::to_json(without).dump(2),
            analysis::to_json(with).dump(2));
}

// --- batch interpreter ---------------------------------------------------

// Hand-scheduled exactness: n = 1 with a certain schedule (numer ==
// denom) halts every lane deterministically within the first interpreter
// sweep, so every batch metric is predictable: four lanes retire, one
// sweep runs, and the occupancy histogram holds exactly one sample of 4.
TEST(TelemetryBatch, HandScheduledCellHasExactAccounting) {
  const impatience_schedule certain{1, 1};
  trial_grid cell = conciliator_cell(certain, /*n=*/1, /*trials=*/4);
  std::vector<analysis::trial_record> records(4);
  const std::uint64_t indices[4] = {0, 1, 2, 3};
  std::atomic<std::size_t> retired{0};
  telemetry_bus bus;
  {
    telemetry_install install(bus);
    analysis::run_batch_trials(cell, *cell.batch_hint, indices,
                               records.data(), 4, &retired);
  }
  EXPECT_EQ(retired.load(), 4u);
  std::uint64_t steps = 0;
  for (const auto& rec : records) steps += rec.result.steps;
  const telemetry_snapshot snap = bus.snapshot();
  EXPECT_EQ(get(snap, tcounter::batch_trials), 4u);
  EXPECT_EQ(get(snap, tcounter::batch_lanes_retired), 4u);
  EXPECT_EQ(get(snap, tcounter::batch_sweeps), 1u);
  EXPECT_EQ(get(snap, tcounter::trials_completed), 4u);
  EXPECT_EQ(get(snap, tcounter::steps), steps);
  const log_histogram& occ = hist(snap, thist::batch_occupancy);
  EXPECT_EQ(occ.count, 1u);
  EXPECT_EQ(occ.sum, 4u);
  EXPECT_EQ(occ.max, 4u);
  EXPECT_EQ(hist(snap, thist::trial_steps).count, 4u);
  EXPECT_EQ(hist(snap, thist::trial_steps).sum, steps);
}

// The batch engine's deterministic counters agree with the scalar
// engine's for the same cell (sweeps/occupancy excepted: engine layout).
TEST(TelemetryBatch, DeterministicCountersMatchScalarEngine) {
  const trial_grid cell = conciliator_cell();
  telemetry_snapshot snaps[2];
  const engine_kind engines[2] = {engine_kind::scalar, engine_kind::batch};
  for (int i = 0; i < 2; ++i) {
    telemetry_bus bus;
    telemetry_install install(bus);
    experiment_options opts;
    opts.engine = engines[i];
    analysis::run_experiment(cell, opts);
    snaps[i] = bus.snapshot();
  }
  for (tcounter c : {tcounter::trials_completed, tcounter::steps,
                     tcounter::total_ops})
    EXPECT_EQ(get(snaps[0], c), get(snaps[1], c)) << to_string(c);
  EXPECT_EQ(hist(snaps[0], thist::trial_steps).buckets,
            hist(snaps[1], thist::trial_steps).buckets);
  EXPECT_EQ(get(snaps[1], tcounter::batch_trials), cell.trials);
  EXPECT_EQ(get(snaps[0], tcounter::batch_trials), 0u);
}

// --- multi-shot engine ---------------------------------------------------

TEST(TelemetryMulti, SlotCountersMatchSummary) {
  analysis::multi_grid cell;
  cell.label = "telemetry_multi";
  cell.spec = stack_for("impatient");
  cell.n = 4;
  cell.shards = 2;
  cell.slots = 4;
  cell.trials = 3;
  cell.extent_words = 32;
  telemetry_bus bus;
  summary_stats s;
  {
    telemetry_install install(bus);
    s = analysis::run_multi_experiment(cell, {});
  }
  const telemetry_snapshot snap = bus.snapshot();
  EXPECT_EQ(get(snap, tcounter::trials_completed), cell.trials);
  EXPECT_EQ(get(snap, tcounter::slot_proposals), s.multi.proposals);
  EXPECT_EQ(get(snap, tcounter::slot_decisions), s.multi.decisions);
  EXPECT_EQ(get(snap, tcounter::slot_fast_path_hits),
            s.multi.fast_path_hits);
  EXPECT_GT(hist(snap, thist::slot_ops).count, 0u);
  ASSERT_EQ(snap.cells.size(), 1u);
  EXPECT_EQ(snap.cells[0].first, cell.label);
  EXPECT_EQ(snap.cells[0].second.trials, cell.trials);
}

// --- writer --------------------------------------------------------------

TEST(TelemetryWriter, EmitsValidCumulativeJsonl) {
  const std::string path =
      testing::TempDir() + "/telemetry_writer_test.jsonl";
  telemetry_bus bus(2);
  {
    telemetry_install install(bus);
    telemetry_writer_options wopts;
    wopts.path = path;
    wopts.interval_ms = 0;  // manual sampling only
    wopts.source = "telemetry_test";
    wopts.shard_index = 1;
    wopts.shard_count = 4;
    telemetry_writer writer(bus, wopts);
    ASSERT_TRUE(writer.ok());
    bus.sink(0).add(tcounter::trials_completed, 5);
    bus.sink(0).record(thist::trial_steps, 100);
    writer.sample_now();
    bus.sink(1).add(tcounter::trials_completed, 7);
    bus.sink(1).cell("cell/x", 7, 700);
    writer.sample_now();
    writer.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::vector<analysis::json> lines;
  std::string line;
  while (std::getline(in, line))
    lines.push_back(analysis::json::parse(line));
  ASSERT_EQ(lines.size(), 3u);  // two samples + the final line
  std::uint64_t prev_tick = 0;
  std::uint64_t prev_done = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const analysis::json& doc = lines[i];
    EXPECT_EQ(doc.find("schema")->as_string(), kTelemetrySchemaName);
    EXPECT_EQ(doc.find("version")->as_uint(), kTelemetrySchemaVersion);
    EXPECT_EQ(doc.find("source")->as_string(), "telemetry_test");
    EXPECT_EQ(doc.find("shard")->as_uint(), 1u);
    EXPECT_EQ(doc.find("shard_count")->as_uint(), 4u);
    const std::uint64_t tick = doc.find("tick")->as_uint();
    EXPECT_GT(tick, prev_tick);  // writer-owned monotone tick
    prev_tick = tick;
    const std::uint64_t done =
        doc.find("counters")->find("trials_completed")->as_uint();
    EXPECT_GE(done, prev_done);  // cumulative-from-start
    prev_done = done;
    EXPECT_EQ(doc.find("final")->as_bool(), i + 1 == lines.size());
  }
  EXPECT_EQ(prev_done, 12u);
  // Histogram serialization is sparse [bucket, count] pairs.
  const analysis::json& steps_hist =
      *lines.back().find("hists")->find("trial_steps");
  EXPECT_EQ(steps_hist.find("count")->as_uint(), 1u);
  EXPECT_EQ(steps_hist.find("sum")->as_uint(), 100u);
  const analysis::json& buckets = *steps_hist.find("buckets");
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets.at(0).at(0).as_uint(), hist_bucket(100));
  EXPECT_EQ(buckets.at(0).at(1).as_uint(), 1u);
  // Cells echo per-label totals.
  const analysis::json& cells = *lines.back().find("cells");
  EXPECT_EQ(cells.find("cell/x")->find("trials")->as_uint(), 7u);
  EXPECT_EQ(cells.find("cell/x")->find("steps")->as_uint(), 700u);
}

TEST(TelemetryWriter, CloseIsIdempotent) {
  const std::string path = testing::TempDir() + "/telemetry_close_test.jsonl";
  telemetry_bus bus(1);
  telemetry_writer_options wopts;
  wopts.path = path;
  wopts.interval_ms = 0;
  telemetry_writer writer(bus, wopts);
  writer.close();
  writer.close();  // no-op; the destructor's close() is too
  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 1u);  // exactly one final line
}

// --- perfetto export -----------------------------------------------------

TEST(TelemetryPerfetto, CounterTracksParseAndCarryValues) {
  telemetry_track track;
  track.source = "bench_x";
  telemetry_point p0;
  p0.elapsed_ms = 100.0;
  p0.counters.emplace_back("trials_completed", 10.0);
  telemetry_point p1;
  p1.elapsed_ms = 200.0;
  p1.counters.emplace_back("trials_completed", 30.0);
  track.points = {p0, p1};
  std::ostringstream out;
  write_telemetry_perfetto(out, {track});
  const analysis::json doc = analysis::json::parse(out.str());
  const analysis::json& events = *doc.find("traceEvents");
  ASSERT_EQ(events.size(), 3u);  // process_name meta + two samples
  EXPECT_EQ(events.at(0).find("ph")->as_string(), "M");
  EXPECT_EQ(events.at(0).find("args")->find("name")->as_string(), "bench_x");
  EXPECT_EQ(events.at(1).find("ph")->as_string(), "C");
  EXPECT_EQ(events.at(1).find("ts")->as_uint(), 100000u);  // ms -> us
  EXPECT_EQ(events.at(1).find("args")->find("value")->as_double(), 10.0);
  EXPECT_EQ(events.at(2).find("args")->find("value")->as_double(), 30.0);
}

}  // namespace
}  // namespace modcon::obs
