#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/prob.h"

namespace modcon {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  rng parent(7);
  rng child = parent.split(1);
  rng parent2(7);
  rng child2 = parent2.split(1);
  // Same derivation is reproducible...
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next(), child2.next());
  // ...and different tags give different streams.
  rng parent3(7);
  rng other = parent3.split(2);
  rng child3 = rng(7).split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += other.next() == child3.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                              (1ull << 40) + 17}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  rng r(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, BernoulliMatchesRationalProbability) {
  rng r(5);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(3, 16);
  double p = static_cast<double>(hits) / kDraws;
  EXPECT_NEAR(p, 3.0 / 16.0, 0.01);
}

TEST(Rng, FairCoinIsFair) {
  rng r(9);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += r.flip();
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Rng, Uniform01InRange) {
  rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prob, ClampsToOne) {
  prob p(10, 4);
  EXPECT_TRUE(p.certain());
  EXPECT_EQ(p.num(), p.den());
}

TEST(Prob, Pow2OverMatchesImpatienceSchedule) {
  // min(2^k / n, 1) for n = 8.
  EXPECT_EQ(prob::pow2_over(0, 8), prob(1, 8));
  EXPECT_EQ(prob::pow2_over(1, 8), prob(1, 4));
  EXPECT_EQ(prob::pow2_over(2, 8), prob(1, 2));
  EXPECT_EQ(prob::pow2_over(3, 8), prob(1, 1));
  EXPECT_TRUE(prob::pow2_over(3, 8).certain());
  EXPECT_TRUE(prob::pow2_over(64, 8).certain());
  EXPECT_TRUE(prob::pow2_over(70, 1000).certain());
}

TEST(Prob, SampleRespectsCertainAndImpossible) {
  rng r(1);
  EXPECT_TRUE(prob::always().sample(r));
  EXPECT_FALSE(prob::never().sample(r));
}

TEST(Prob, SampleFrequencyMatches) {
  rng r(21);
  prob p(1, 8);
  int hits = 0;
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) hits += p.sample(r);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.125, 0.01);
}

TEST(Prob, EqualityIsRational) {
  EXPECT_EQ(prob(1, 2), prob(2, 4));
  EXPECT_FALSE(prob(1, 2) == prob(1, 3));
}

}  // namespace
}  // namespace modcon
