// The quorum ratifier (Theorem 8): acceptance, coherence, validity,
// work/space bounds, across all quorum systems, schedulers, and crash
// patterns; plus the cheap-collect variant.
#include "core/ratifier/quorum_ratifier.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/ratifier/cheap_collect_ratifier.h"
#include "sim/adversaries/adversaries.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

analysis::sim_object_builder ratifier_builder(
    std::shared_ptr<const quorum_system> qs) {
  return [qs](address_space& mem, std::size_t) {
    return std::make_unique<quorum_ratifier<sim_env>>(mem, qs);
  };
}

analysis::sim_object_builder cheap_collect_builder() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<cheap_collect_ratifier<sim_env>>(mem, n);
  };
}

struct ratifier_case {
  const char* kind;
  std::uint64_t m;
  std::size_t n;
};

std::shared_ptr<const quorum_system> system_for(const ratifier_case& c) {
  if (std::string(c.kind) == "binary") return make_binary_quorums();
  if (std::string(c.kind) == "bollobas") return make_bollobas_quorums(c.m);
  return make_bitvector_quorums(c.m);
}

class RatifierProperty : public ::testing::TestWithParam<ratifier_case> {};

TEST_P(RatifierProperty, AcceptanceOnUnanimousInputs) {
  auto c = GetParam();
  auto qs = system_for(c);
  for (value_t v : {value_t{0}, c.m - 1}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      sim::random_oblivious adv;
      std::vector<value_t> inputs(c.n, v);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(ratifier_builder(qs), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(analysis::check_acceptance(res.outputs, v))
          << c.kind << " m=" << c.m << " n=" << c.n << " v=" << v;
    }
  }
}

TEST_P(RatifierProperty, CoherenceAndValidityOnMixedInputs) {
  auto c = GetParam();
  auto qs = system_for(c);
  for (auto pattern : {input_pattern::half_half, input_pattern::alternating,
                       input_pattern::random_m}) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      sim::random_oblivious adv;
      auto inputs = make_inputs(pattern, c.n, c.m, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(ratifier_builder(qs), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(res.coherent()) << c.kind << " seed=" << seed;
      EXPECT_TRUE(res.valid(inputs)) << c.kind << " seed=" << seed;
    }
  }
}

TEST_P(RatifierProperty, WorkAndSpaceMatchTheorem) {
  auto c = GetParam();
  auto qs = system_for(c);
  sim::round_robin adv;
  auto inputs = make_inputs(input_pattern::alternating, c.n, c.m, 1);
  auto res = run_object_trial(ratifier_builder(qs), inputs, adv);
  ASSERT_TRUE(res.completed());
  // Registers: pool + proposal.
  EXPECT_EQ(res.registers, qs->pool_size() + 1);
  // Individual work: |W| + |R| + 2 (the object's own declared bound).
  sim::round_robin scratch_adv;
  sim::sim_world scratch(1, scratch_adv, 1);
  quorum_ratifier<sim_env> probe(scratch, qs);
  EXPECT_EQ(probe.individual_work_bound(),
            qs->max_write_quorum() + qs->max_read_quorum() + 2u);
  EXPECT_LE(res.max_individual_ops, probe.individual_work_bound());
}

INSTANTIATE_TEST_SUITE_P(
    AllRatifiers, RatifierProperty,
    ::testing::Values(
        ratifier_case{"binary", 2, 2}, ratifier_case{"binary", 2, 3},
        ratifier_case{"binary", 2, 8}, ratifier_case{"binary", 2, 33},
        ratifier_case{"bollobas", 2, 4}, ratifier_case{"bollobas", 5, 5},
        ratifier_case{"bollobas", 16, 8}, ratifier_case{"bollobas", 100, 12},
        ratifier_case{"bitvector", 2, 4}, ratifier_case{"bitvector", 5, 5},
        ratifier_case{"bitvector", 16, 8},
        ratifier_case{"bitvector", 100, 12}),
    [](const auto& info) {
      return std::string(info.param.kind) + "_m" +
             std::to_string(info.param.m) + "_n" +
             std::to_string(info.param.n);
    });

TEST(QuorumRatifier, SoloProcessDecidesItsOwnValue) {
  // Acceptance from the solo process's perspective: it cannot
  // distinguish running alone from unanimity, so it must decide (the
  // fast-path argument of §4.1).
  auto qs = make_bollobas_quorums(10);
  sim::round_robin adv;
  auto res = run_object_trial(ratifier_builder(qs), {7}, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_EQ(res.outputs[0], (decided{true, 7}));
}

TEST(QuorumRatifier, FirstFinisherForcesFollowersToItsValue) {
  // Sequential schedule: p0 runs to completion first and decides; by
  // coherence everyone else must then output p0's value.
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::fixed_order adv(sim::fixed_order::mode::sequential);
    auto inputs = make_inputs(input_pattern::alternating, 6, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(ratifier_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.outputs[0].decide);
    for (const decided& d : res.outputs)
      EXPECT_EQ(d.value, res.outputs[0].value);
  }
}

TEST(QuorumRatifier, MixedInputsUnderContentionDoNotAllDecide) {
  // Round-robin on a half/half split: both values get announced before
  // anyone reaches the read quorum, so nobody may decide — but everyone
  // must converge on the proposal.
  auto qs = make_binary_quorums();
  sim::round_robin adv;
  auto inputs = make_inputs(input_pattern::half_half, 4, 2, 1);
  auto res = run_object_trial(ratifier_builder(qs), inputs, adv);
  ASSERT_TRUE(res.completed());
  for (const decided& d : res.outputs) EXPECT_FALSE(d.decide);
  EXPECT_TRUE(res.coherent());
}

TEST(QuorumRatifier, CoherenceUnderCrashes) {
  auto qs = make_bollobas_quorums(4);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::random_m, 6, 4, seed);
    trial_options opts;
    opts.seed = seed;
    opts.faults.crashes = {{static_cast<process_id>(seed % 6), seed % 4},
                    {static_cast<process_id>((seed + 3) % 6), seed % 3}};
    auto res = run_object_trial(ratifier_builder(qs), inputs, adv, opts);
    EXPECT_TRUE(res.coherent()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

TEST(QuorumRatifier, RejectsValueOutsideSigma) {
  auto qs = make_binary_quorums();
  sim::round_robin adv;
  EXPECT_THROW(run_object_trial(ratifier_builder(qs), {2}, adv),
               invariant_error);
}

TEST(QuorumRatifier, BinaryUsesThreeRegistersAndFourOps) {
  // §6.2 choice 1 exactly.
  auto qs = make_binary_quorums();
  sim::round_robin adv;
  auto res = run_object_trial(ratifier_builder(qs), {0, 1}, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_EQ(res.registers, 3u);
  EXPECT_LE(res.max_individual_ops, 4u);
}

TEST(CheapCollectRatifier, FourOperationsForAnyM) {
  // §6.2 choice 4: individual work 4 even with many values, in the
  // cheap-collect cost model.
  sim::random_oblivious adv;
  auto inputs = make_inputs(input_pattern::distinct, 12, 12, 1);
  auto res = run_object_trial(cheap_collect_builder(), inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_LE(res.max_individual_ops, 4u);
  EXPECT_TRUE(res.coherent());
  EXPECT_TRUE(res.valid(inputs));
}

TEST(CheapCollectRatifier, AcceptanceAndCoherence) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    {
      std::vector<value_t> inputs(5, 9);
      auto res =
          run_object_trial(cheap_collect_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(analysis::check_acceptance(res.outputs, 9));
    }
    {
      auto inputs = make_inputs(input_pattern::random_m, 5, 100, seed);
      auto res =
          run_object_trial(cheap_collect_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(res.coherent());
      EXPECT_TRUE(res.valid(inputs));
    }
  }
}

TEST(QuorumRatifier, DecisionImpliesOwnInput) {
  // The proof of Theorem 8 notes a process can only return (1, v) for its
  // own input v.
  auto qs = make_bollobas_quorums(8);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::random_m, 5, 8, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(ratifier_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    for (std::size_t i = 0; i < res.outputs.size(); ++i) {
      if (res.outputs[i].decide)
        EXPECT_EQ(res.outputs[i].value, inputs[res.halted_pids[i]]);
    }
  }
}

}  // namespace
}  // namespace modcon
