// Exact game solution for the impatient conciliator: the strongest
// in-model adversary, solved by memoized expectiminimax, must not beat
// Theorem 7's agreement bound.
#include "check/conciliator_game.h"

#include <gtest/gtest.h>

namespace modcon::check {
namespace {

constexpr double kDelta = 0.0553;

TEST(ConciliatorGame, SoloAndUnanimousAlwaysAgree) {
  EXPECT_DOUBLE_EQ(exact_worst_case_agreement(1, 0).value, 1.0);
  EXPECT_DOUBLE_EQ(exact_worst_case_agreement(4, 0).value, 1.0);
  EXPECT_DOUBLE_EQ(exact_worst_case_agreement(0, 7).value, 1.0);
}

TEST(ConciliatorGame, SymmetricInInputLabels) {
  for (std::size_t a = 1; a <= 4; ++a) {
    for (std::size_t b = 1; b <= 4; ++b) {
      EXPECT_NEAR(exact_worst_case_agreement(a, b).value,
                  exact_worst_case_agreement(b, a).value, 1e-12);
    }
  }
}

TEST(ConciliatorGame, Theorem7BoundHoldsExactly) {
  // THE check: the exact optimum of the strongest in-model adversary
  // (adaptive minus coin visibility — at least as strong as any
  // location-oblivious adversary) stays above δ for every contended
  // split up to n = 7 (the state space grows combinatorially past that).
  for (std::size_t n = 2; n <= 7; ++n) {
    for (std::size_t a = 1; a < n; ++a) {
      auto g = exact_worst_case_agreement(a, n - a);
      EXPECT_GE(g.value, kDelta) << "a=" << a << " b=" << n - a;
      EXPECT_LT(g.value, 1.0) << "a contended game is not a sure thing";
    }
  }
}

TEST(ConciliatorGame, TwoProcessValueIsExactlyOneQuarter) {
  // n = 2, inputs {A, B}: the optimal adversary forces both processes
  // into pending 1/2-probability writes and wins unless exactly one
  // lands — the exact game value is 1/4, a 4.5× margin over δ.
  auto g = exact_worst_case_agreement(1, 1);
  EXPECT_NEAR(g.value, 0.25, 1e-9);
  EXPECT_GT(g.states, 0u);
}

TEST(ConciliatorGame, EmpiricalAttackersCannotBeatTheExactOptimum) {
  // Sanity link between the two methodologies: the stockpiler's measured
  // agreement frequency (E5, ~0.39 at n = 8) must be >= the exact
  // optimum for n = 8 half/half (measured exact value ≈ 0.3446 — the
  // hand-written attacker plays within 15% of optimal).
  auto g = exact_worst_case_agreement(4, 4);
  EXPECT_LE(g.value, 0.40);
  EXPECT_GE(g.value, kDelta);
}

TEST(ConciliatorGame, FasterGrowthWeakensAgreement) {
  auto g2 = exact_worst_case_agreement(3, 3, {2, 1});
  auto g4 = exact_worst_case_agreement(3, 3, {4, 1});
  auto g8 = exact_worst_case_agreement(3, 3, {8, 1});
  EXPECT_GT(g2.value, g4.value);
  EXPECT_GT(g4.value, g8.value);
  // The paper's doubling still clears δ exactly.
  EXPECT_GE(g2.value, kDelta);
}

TEST(ConciliatorGame, NonSaturatingScheduleRejected) {
  EXPECT_THROW(exact_worst_case_agreement(1, 1, {1, 1}), invariant_error);
}

TEST(ConciliatorGame, ValueStabilizesWithN) {
  // Counterintuitively the adversary does NOT get stronger with n on
  // balanced splits: the exact value rises from 1/4 (n = 2) toward
  // ≈ 0.345 and flattens — more processes also mean more chances that
  // exactly one write lands cleanly.  Pin the measured plateau.
  EXPECT_NEAR(exact_worst_case_agreement(1, 1).value, 0.250, 1e-6);
  EXPECT_NEAR(exact_worst_case_agreement(2, 2).value, 0.3164, 5e-4);
  EXPECT_NEAR(exact_worst_case_agreement(3, 3).value, 0.3455, 5e-4);
  EXPECT_NEAR(exact_worst_case_agreement(4, 4).value, 0.3446, 5e-4);
}

}  // namespace
}  // namespace modcon::check
