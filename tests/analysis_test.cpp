// The §3 property predicates and the workload generator.
#include "analysis/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/runner.h"

namespace modcon::analysis {
namespace {

TEST(Metrics, ValidityChecksMembership) {
  std::vector<value_t> inputs{1, 2, 3};
  EXPECT_TRUE(check_validity({{false, 1}, {true, 3}}, inputs));
  EXPECT_FALSE(check_validity({{false, 4}}, inputs));
  EXPECT_TRUE(check_validity({}, inputs));  // vacuous
}

TEST(Metrics, CoherenceDefinition) {
  // No decision bit: always coherent, even with mixed values.
  EXPECT_TRUE(check_coherence({{false, 1}, {false, 2}}));
  // A decider pins every value, decided or not.
  EXPECT_TRUE(check_coherence({{true, 5}, {false, 5}, {true, 5}}));
  EXPECT_FALSE(check_coherence({{true, 5}, {false, 6}}));
  EXPECT_FALSE(check_coherence({{false, 6}, {true, 5}}));
  EXPECT_FALSE(check_coherence({{true, 5}, {true, 6}}));
  EXPECT_TRUE(check_coherence({}));
}

TEST(Metrics, AgreementIgnoresDecisionBits) {
  EXPECT_TRUE(check_agreement({{false, 2}, {true, 2}}));
  EXPECT_FALSE(check_agreement({{false, 2}, {false, 3}}));
  EXPECT_TRUE(check_agreement({}));
}

TEST(Metrics, AcceptanceNeedsDecisionAndValue) {
  EXPECT_TRUE(check_acceptance({{true, 4}, {true, 4}}, 4));
  EXPECT_FALSE(check_acceptance({{true, 4}, {false, 4}}, 4));
  EXPECT_FALSE(check_acceptance({{true, 5}}, 4));
}

TEST(Metrics, AllDecided) {
  EXPECT_TRUE(all_decided({{true, 1}, {true, 2}}));
  EXPECT_FALSE(all_decided({{true, 1}, {false, 1}}));
  EXPECT_TRUE(all_decided({}));
}

TEST(Workload, PatternsMatchTheirDefinitions) {
  auto unanimous = make_inputs(input_pattern::unanimous, 5, 3, 1);
  for (value_t v : unanimous) EXPECT_EQ(v, 0u);

  auto half = make_inputs(input_pattern::half_half, 6, 2, 1);
  EXPECT_EQ(std::count(half.begin(), half.end(), 0u), 3);
  EXPECT_EQ(std::count(half.begin(), half.end(), 1u), 3);

  auto alt = make_inputs(input_pattern::alternating, 6, 3, 1);
  for (std::size_t i = 0; i < alt.size(); ++i) EXPECT_EQ(alt[i], i % 3);

  auto dist = make_inputs(input_pattern::distinct, 4, 4, 1);
  EXPECT_EQ(std::set<value_t>(dist.begin(), dist.end()).size(), 4u);

  auto rnd = make_inputs(input_pattern::random_m, 200, 5, 1);
  for (value_t v : rnd) EXPECT_LT(v, 5u);
  // Same seed reproduces, different seed varies.
  EXPECT_EQ(rnd, make_inputs(input_pattern::random_m, 200, 5, 1));
  EXPECT_NE(rnd, make_inputs(input_pattern::random_m, 200, 5, 2));
}

TEST(Workload, DistinctRequiresEnoughValues) {
  EXPECT_THROW(make_inputs(input_pattern::distinct, 5, 4, 1),
               invariant_error);
}

}  // namespace
}  // namespace modcon::analysis
