// The unified fault-injection subsystem: register faults (stale reads,
// write omission), sim crash-restart, decided-then-crashed accounting,
// rt cooperative faults, and the rt trial watchdog.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "core/modcon.h"
#include "rt/env.h"
#include "rt/runner.h"
#include "sim/adversaries/adversaries.h"
#include "sim/register_file.h"

namespace modcon {
namespace {

using analysis::fault_plan;
using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::run_rt_object_trial;
using analysis::trial_options;
using sim::sim_env;

// ---------------------------------------------------------------------
// register_file fault semantics
// ---------------------------------------------------------------------

TEST(RegisterFaults, StaleReadIsObservableAndReturnsPreviousValue) {
  sim::register_file regs;
  reg_id r = regs.alloc(0);
  sim::register_fault_config cfg;
  cfg.regular = true;
  cfg.stale_denominator = 2;
  regs.enable_faults(cfg, /*seed=*/7);

  regs.write(r, 5);
  regs.write(r, 9);  // previous value is now 5
  bool saw_stale = false, saw_fresh = false;
  for (int i = 0; i < 100; ++i) {
    word v = regs.process_read(r);
    // A regular register may return the previous or the current value —
    // never anything else.
    ASSERT_TRUE(v == 5 || v == 9) << "read " << i << " returned " << v;
    (v == 5 ? saw_stale : saw_fresh) = true;
  }
  EXPECT_TRUE(saw_stale);  // deterministic given the fixed seed
  EXPECT_TRUE(saw_fresh);
  EXPECT_GT(regs.stale_reads(), 0u);
  // The ground-truth view is unaffected.
  EXPECT_EQ(regs.read(r), 9u);
}

TEST(RegisterFaults, ScheduleIsSeedReproducible) {
  auto run_schedule = [](std::uint64_t seed) {
    sim::register_file regs;
    reg_id r = regs.alloc(0);
    sim::register_fault_config cfg;
    cfg.regular = true;
    cfg.stale_denominator = 3;
    regs.enable_faults(cfg, seed);
    regs.write(r, 1);
    std::vector<word> observed;
    for (int i = 0; i < 200; ++i) observed.push_back(regs.process_read(r));
    return observed;
  };
  EXPECT_EQ(run_schedule(42), run_schedule(42));
  EXPECT_NE(run_schedule(42), run_schedule(43));
}

TEST(RegisterFaults, ResetRearmsTheSameSchedule) {
  sim::register_file regs;
  reg_id r = regs.alloc(0);
  sim::register_fault_config cfg;
  cfg.regular = true;
  cfg.stale_denominator = 2;
  regs.enable_faults(cfg, 11);

  auto observe = [&] {
    regs.write(r, 1);
    std::vector<word> out;
    for (int i = 0; i < 64; ++i) out.push_back(regs.process_read(r));
    return out;
  };
  auto first = observe();
  regs.reset();
  EXPECT_EQ(regs.stale_reads(), 0u);  // counters re-armed too
  EXPECT_EQ(observe(), first);
}

TEST(RegisterFaults, OmissionBudgetIsBounded) {
  sim::register_file regs;
  reg_id r = regs.alloc(0);
  sim::register_fault_config cfg;
  cfg.omit_denominator = 1;  // every write a candidate while budget lasts
  cfg.omit_budget = 3;
  regs.enable_faults(cfg, 5);

  int omitted = 0;
  for (word v = 1; v <= 10; ++v)
    if (!regs.process_write(r, v)) ++omitted;
  EXPECT_EQ(omitted, 3);
  EXPECT_EQ(regs.omitted_writes(), 3u);
  // Budget exhausted: writes apply normally again.
  EXPECT_EQ(regs.read(r), 10u);
  EXPECT_EQ(regs.writes_applied(r), 7u);
}

// ---------------------------------------------------------------------
// sim backend: crash-restart, decided-then-crashed, determinism
// ---------------------------------------------------------------------

analysis::sim_object_builder consensus_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

TEST(SimFaults, CrashRestartKeepsTheContract) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    opts.faults.restart(0, 2 + seed % 5).restart(1, 4);
    auto inputs = make_inputs(input_pattern::half_half, 6, 2, seed);
    auto res = run_object_trial(consensus_builder(), inputs, adv, opts);

    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_EQ(res.outputs.size(), 6u);  // restarts are not terminal
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
    EXPECT_TRUE(res.coherent()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
    for (const auto& d : res.outputs) EXPECT_TRUE(d.decide);
    // Both victims restarted (their thresholds are far below any
    // consensus execution's length) and are recorded as such.
    EXPECT_EQ(res.restarted_pids, (std::vector<process_id>{0, 1}));
    EXPECT_GE(res.restarts, 2u);
  }
}

TEST(SimFaults, RestartLosesLocalStateButRegistersPersist) {
  // A process that writes a sentinel then spins reading it: after a
  // restart the write happens again (local state lost) while the first
  // write's effect is still visible (registers persist).
  struct write_count_object final : deciding_object<sim_env> {
    reg_id r;
    explicit write_count_object(address_space& mem) : r(mem.alloc(0)) {}
    proc<decided> invoke(sim_env& env, value_t) override {
      word seen = co_await env.read(r);       // op 1
      co_await env.write(r, seen + 1);        // op 2
      word now = co_await env.read(r);        // op 3
      co_return decided{true, now};
    }
    std::string name() const override { return "write-count"; }
  };

  sim::random_oblivious adv;
  trial_options opts;
  opts.seed = 3;
  opts.faults.restart(0, 2);  // after the write, before the final read
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<write_count_object>(mem);
  };
  auto res = run_object_trial(build, {0}, adv, opts);
  ASSERT_TRUE(res.completed());
  ASSERT_EQ(res.outputs.size(), 1u);
  // First incarnation: read 0, write 1, restart.  Second incarnation:
  // read 1 (persisted!), write 2, read 2.
  EXPECT_EQ(res.outputs[0].value, 2u);
  EXPECT_EQ(res.restarts, 1u);
}

TEST(SimFaults, DecidedThenCrashedFeedsAgreement) {
  // Regression for the halted/crashed partition: a process that crashes
  // on the exact op where it decides must appear in crashed_pids (not
  // halted_pids), yet its decided value must still feed the checks.
  struct echo_object final : deciding_object<sim_env> {
    reg_id r;
    explicit echo_object(address_space& mem) : r(mem.alloc(0)) {}
    proc<decided> invoke(sim_env& env, value_t input) override {
      co_await env.write(r, input + 1);  // op 1
      co_await env.read(r);              // op 2; decides on resume
      co_return decided{true, input};
    }
    std::string name() const override { return "echo"; }
  };
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<echo_object>(mem);
  };

  sim::random_oblivious adv;
  trial_options opts;
  opts.seed = 1;
  opts.faults.crash(0, 2);  // fires exactly when pid 0's program returns
  auto res = run_object_trial(build, {0, 1}, adv, opts);

  // pid 0 is reported crashed, not halted...
  EXPECT_EQ(res.crashed_pids, (std::vector<process_id>{0}));
  EXPECT_EQ(res.halted_pids, (std::vector<process_id>{1}));
  ASSERT_EQ(res.outputs.size(), 1u);
  // ...but its decided value escaped and participates in the checks:
  ASSERT_EQ(res.crashed_outputs.size(), 1u);
  EXPECT_EQ(res.crashed_outputs[0].value, 0u);
  EXPECT_EQ(res.all_outputs().size(), 2u);
  // The two echoes "decided" different values, so agreement over all
  // escaped outputs must fail — outputs alone would (wrongly) pass.
  EXPECT_TRUE(analysis::check_agreement(res.outputs));
  EXPECT_FALSE(res.agreement());
}

// Whole-summary JSON comparison with timing measurements pinned.
void summary_stats_equal_json(analysis::summary_stats a,
                              analysis::summary_stats b) {
  analysis::clear_timing_measurements(a);
  analysis::clear_timing_measurements(b);
  EXPECT_EQ(analysis::to_json(a, true).dump(2),
            analysis::to_json(b, true).dump(2));
}

TEST(SimFaults, FaultTrialsAreThreadCountInvariant) {
  // Crash-restart + regular registers + write omission, swept through the
  // experiment engine: per-trial results and fault counters must be
  // byte-identical for --threads 1 and --threads 4.
  analysis::trial_grid cell{
      .label = "faults/det",
      .build = consensus_builder(),
      .n = 6,
      .trials = 20,
      .base_seed = 77,
      .faults = fault_plan{}
                    .restart(0, 3)
                    .crash(5, 6)
                    .regular_registers(4)
                    .omit_writes(3, 4),
      .keep_records = true,
  };
  auto serial = analysis::run_experiment(cell, {.threads = 1});
  auto parallel = analysis::run_experiment(cell, {.threads = 4});

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t t = 0; t < serial.records.size(); ++t) {
    const auto& ra = serial.records[t].result;
    const auto& rb = parallel.records[t].result;
    EXPECT_EQ(ra.status, rb.status);
    EXPECT_EQ(ra.halted_pids, rb.halted_pids);
    EXPECT_EQ(ra.crashed_pids, rb.crashed_pids);
    EXPECT_EQ(ra.restarted_pids, rb.restarted_pids);
    EXPECT_EQ(ra.restarts, rb.restarts);
    EXPECT_EQ(ra.stale_reads, rb.stale_reads);
    EXPECT_EQ(ra.omitted_writes, rb.omitted_writes);
    EXPECT_EQ(ra.total_ops, rb.total_ops);
    EXPECT_EQ(ra.steps, rb.steps);
  }
  EXPECT_EQ(serial.restarts, parallel.restarts);
  EXPECT_EQ(serial.stale_reads, parallel.stale_reads);
  EXPECT_EQ(serial.omitted_writes, parallel.omitted_writes);
  // The injections actually happened.
  EXPECT_GT(serial.restarts, 0u);
  EXPECT_GT(serial.stale_reads, 0u);
  EXPECT_EQ(serial.fault_profile,
            "crash(5@6) restart(0@3) regular(1/4) omit(1/3x4)");

  summary_stats_equal_json(serial, parallel);
}

TEST(SimFaults, RegularRegistersWithStepLimitStillTerminalOrCounted) {
  // Consensus over regular registers may disagree or fail acceptance —
  // the paper's guarantees assume atomic registers — but the harness must
  // stay deterministic and every trial must land in a bucket.
  analysis::trial_grid cell{
      .label = "faults/regular",
      .build = consensus_builder(),
      .n = 4,
      .trials = 30,
      .base_seed = 5,
      .limits = {.max_steps = 200'000},
      .faults = fault_plan{}.regular_registers(2),  // very noisy
  };
  auto s = analysis::run_experiment(cell, {.threads = 2});
  EXPECT_EQ(s.trials, 30u);
  EXPECT_LE(s.completed, s.trials);
  EXPECT_GT(s.stale_reads, 0u);
  // Validity only quantifies over escaped outputs, which exist for
  // completed trials; the counter can never exceed completed.
  EXPECT_LE(s.valid, s.completed);
}

// ---------------------------------------------------------------------
// rt backend: cooperative faults and the watchdog
// ---------------------------------------------------------------------

analysis::rt_object_builder rt_consensus_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<rt::rt_env>(mem, make_binary_quorums());
  };
}

TEST(RtFaults, CrashedWorkerIsReportedAndSurvivorsAgree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    analysis::rt_trial_options opts;
    opts.seed = seed;
    // after_ops = 1 fires at the entry of pid 2's second operation, which
    // every process of this stack is guaranteed to attempt (conciliator
    // read, then at least one ratifier op).  Larger fault points are racy
    // on real threads: a late-starting pid can finish its whole program
    // in fewer ops and halt before the fault ever fires.
    opts.faults.crash(2, 1);
    auto inputs = make_inputs(input_pattern::alternating, 4, 2, seed);
    auto res = run_rt_object_trial(rt_consensus_builder(), inputs, opts);

    EXPECT_EQ(res.status, sim::run_status::no_runnable);
    EXPECT_EQ(res.crashed_pids, (std::vector<process_id>{2}));
    EXPECT_EQ(res.halted_pids.size(), 3u);
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

TEST(RtFaults, RestartedWorkerRecoversAndAgrees) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    analysis::rt_trial_options opts;
    opts.seed = seed;
    opts.faults.restart(1, 1);  // second-op entry: guaranteed to fire
    auto inputs = make_inputs(input_pattern::alternating, 4, 2, seed);
    auto res = run_rt_object_trial(rt_consensus_builder(), inputs, opts);

    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_EQ(res.halted_pids.size(), 4u);
    EXPECT_EQ(res.restarted_pids, (std::vector<process_id>{1}));
    EXPECT_GE(res.restarts, 1u);
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

TEST(RtFaults, StallWithResumeCompletes) {
  analysis::rt_trial_options opts;
  opts.seed = 9;
  opts.faults.stall(0, 1, /*resume_after_ms=*/5);
  auto inputs = make_inputs(input_pattern::alternating, 4, 2, 9);
  auto res = run_rt_object_trial(rt_consensus_builder(), inputs, opts);

  ASSERT_TRUE(res.completed());
  EXPECT_FALSE(res.timed_out());
  EXPECT_EQ(res.halted_pids.size(), 4u);
  EXPECT_TRUE(res.agreement());
}

TEST(RtWatchdog, HungTrialReportsTimedOut) {
  // A stall with no resume hangs its thread forever; the watchdog must
  // reclaim the trial and report timed_out instead of wedging the caller.
  analysis::rt_trial_options opts;
  opts.seed = 4;
  opts.faults.stall(1, 1);  // never resumes; second-op entry always fires
  opts.watchdog_ms = 250;
  auto inputs = make_inputs(input_pattern::alternating, 4, 2, 4);
  auto res = run_rt_object_trial(rt_consensus_builder(), inputs, opts);

  EXPECT_TRUE(res.timed_out());
  EXPECT_EQ(res.status, sim::run_status::timed_out);
  // The hung pid decided nothing: it is in neither partition.
  EXPECT_TRUE(std::find(res.halted_pids.begin(), res.halted_pids.end(), 1) ==
              res.halted_pids.end());
  EXPECT_TRUE(std::find(res.crashed_pids.begin(), res.crashed_pids.end(),
                        1) == res.crashed_pids.end());
  // Whatever escaped before the abort still satisfies the invariants.
  EXPECT_TRUE(res.coherent());
  EXPECT_TRUE(res.valid(inputs));
}

TEST(RtWatchdog, SubsequentTrialsAfterATimeoutComplete) {
  // A timed-out trial must not poison the trials around it (the "grid
  // keeps going" property the bench suite depends on).
  auto inputs = make_inputs(input_pattern::alternating, 4, 2, 8);
  analysis::rt_trial_options hung;
  hung.seed = 8;
  hung.faults.stall(0, 1);
  hung.watchdog_ms = 250;
  auto bad = run_rt_object_trial(rt_consensus_builder(), inputs, hung);
  EXPECT_TRUE(bad.timed_out());

  analysis::rt_trial_options clean;
  clean.seed = 8;
  auto good = run_rt_object_trial(rt_consensus_builder(), inputs, clean);
  ASSERT_TRUE(good.completed());
  EXPECT_TRUE(good.agreement());
}

}  // namespace
}  // namespace modcon
