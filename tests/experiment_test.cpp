// The batch experiment engine (analysis/experiment.h): deterministic
// parallelism, summary math, and the JSON artifact layer.
#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/json_writer.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"

namespace modcon::analysis {
namespace {

using sim::sim_env;

sim_object_builder consensus_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

sim_object_builder conciliator_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

trial_grid small_grid_cell(std::string label, std::uint64_t base_seed) {
  return {
      .label = std::move(label),
      .build = consensus_builder(),
      .n = 4,
      .trials = 24,
      .base_seed = base_seed,
      .keep_records = true,
  };
}

// --- seed derivation ----------------------------------------------------

TEST(DeriveTrialSeed, DeterministicAndWellMixed) {
  EXPECT_EQ(derive_trial_seed(1, 0), derive_trial_seed(1, 0));
  // Distinct trials get distinct seeds (SplitMix64 is a bijection of the
  // xored state, so collisions would need base ^ i == base ^ j).
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 64; ++t)
    seeds.push_back(derive_trial_seed(42, t));
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]);
  // Nearby bases decorrelate.
  EXPECT_NE(derive_trial_seed(1, 0), derive_trial_seed(2, 0));
  EXPECT_NE(derive_trial_seed(1, 1), derive_trial_seed(2, 0));
}

// --- parallel determinism ----------------------------------------------

void expect_identical(const summary_stats& a, const summary_stats& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t t = 0; t < a.records.size(); ++t) {
    const auto& ra = a.records[t];
    const auto& rb = b.records[t];
    EXPECT_EQ(ra.trial_index, rb.trial_index);
    EXPECT_EQ(ra.seed, rb.seed);
    EXPECT_EQ(ra.result.status, rb.result.status);
    EXPECT_EQ(ra.result.total_ops, rb.result.total_ops);
    EXPECT_EQ(ra.result.max_individual_ops, rb.result.max_individual_ops);
    EXPECT_EQ(ra.result.steps, rb.result.steps);
    EXPECT_EQ(ra.result.halted_pids, rb.result.halted_pids);
    EXPECT_EQ(ra.result.crashed_pids, rb.result.crashed_pids);
    ASSERT_EQ(ra.result.outputs.size(), rb.result.outputs.size());
    for (std::size_t i = 0; i < ra.result.outputs.size(); ++i) {
      EXPECT_EQ(ra.result.outputs[i].decide, rb.result.outputs[i].decide);
      EXPECT_EQ(ra.result.outputs[i].value, rb.result.outputs[i].value);
    }
    EXPECT_EQ(ra.probes, rb.probes);
  }
  // Summaries are a deterministic function of the records, so the whole
  // JSON document must match byte-for-byte once the (intentionally
  // non-deterministic) timing measurements are pinned.
  summary_stats sa = a, sb = b;
  clear_timing_measurements(sa);
  clear_timing_measurements(sb);
  EXPECT_EQ(to_json(sa, true).dump(2), to_json(sb, true).dump(2));
}

TEST(ExperimentEngine, ParallelMatchesSerialByteForByte) {
  std::vector<trial_grid> grid;
  grid.push_back(small_grid_cell("det/a", 7));
  grid.push_back(small_grid_cell("det/b", 1234567));
  grid[1].pattern = input_pattern::alternating;

  auto serial = run_experiment_grid(grid, {.threads = 1});
  auto par4 = run_experiment_grid(grid, {.threads = 4});
  auto par3 = run_experiment_grid(grid, {.threads = 3});
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(par4.size(), 2u);
  for (std::size_t c = 0; c < serial.size(); ++c) {
    expect_identical(serial[c], par4[c]);
    expect_identical(serial[c], par3[c]);
  }
}

TEST(ExperimentEngine, ProbesAndFaultsAreDeterministicInParallel) {
  trial_grid cell{
      .label = "det/faults",
      .build = consensus_builder(),
      .n = 6,
      .trials = 16,
      .base_seed = 99,
      .faults_for =
          [](std::uint64_t, std::uint64_t seed) {
            fault_plan plan;
            plan.crash(0, seed % 4);
            return plan;
          },
      .probes = {{"registers",
                  [](const sim::sim_world& w,
                     const deciding_object<sim_env>&) {
                    return static_cast<double>(w.allocated());
                  }}},
      .keep_records = true,
  };
  auto serial = run_experiment(cell, {.threads = 1});
  auto parallel = run_experiment(cell, {.threads = 4});
  expect_identical(serial, parallel);
  // The probe actually ran and was aggregated.
  const dist_summary* d = parallel.find_probe("registers");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, parallel.completed);
  EXPECT_GT(d->min, 0.0);
}

TEST(ExperimentEngine, CrashedPidsReported) {
  trial_grid cell{
      .label = "crash",
      .build = consensus_builder(),
      .n = 4,
      .trials = 8,
      .faults = fault_plan{}.crash(1, 0).crash(2, 1),
      .keep_records = true,
  };
  auto s = run_experiment(cell, {.threads = 2});
  EXPECT_EQ(s.crashed_processes, 2 * s.trials);
  // Crash runs terminate as no_runnable; the engine still counts them as
  // completed (survivor outputs are the measurement).
  EXPECT_EQ(s.completed, s.trials);
  for (const auto& rec : s.records) {
    EXPECT_EQ(rec.result.status, sim::run_status::no_runnable);
    EXPECT_EQ(rec.result.crashed_pids,
              (std::vector<process_id>{1, 2}));
    for (process_id p : rec.result.halted_pids) {
      EXPECT_NE(p, 1u);
      EXPECT_NE(p, 2u);
    }
    EXPECT_EQ(rec.result.halted_pids.size(), 2u);
  }
}

TEST(ExperimentEngine, SummaryCountsConsistent) {
  auto s = run_experiment(
      {
          .label = "counts",
          .build = conciliator_builder(),
          .n = 8,
          .trials = 50,
      },
      {.threads = 2});
  EXPECT_EQ(s.trials, 50u);
  EXPECT_EQ(s.completed, 50u);  // conciliators always halt
  EXPECT_LE(s.agreed, s.completed);
  EXPECT_EQ(s.valid, s.completed);  // conciliator outputs are inputs
  EXPECT_EQ(s.total_ops.count, s.completed);
  EXPECT_GE(s.agreement_rate(), 0.0553);  // Theorem 7 floor, generously met
  EXPECT_GT(s.total_ops.mean, 0.0);
  EXPECT_LE(s.total_ops.min, s.total_ops.p50);
  EXPECT_LE(s.total_ops.p50, s.total_ops.p90);
  EXPECT_LE(s.total_ops.p90, s.total_ops.p99);
  EXPECT_LE(s.total_ops.p99, s.total_ops.max);
}

// --- percentile / moment math ------------------------------------------

TEST(DistSummary, NearestRankPercentilesOnKnownDistribution) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);  // 1..100, reversed
  auto d = dist_summary::of(xs);
  EXPECT_EQ(d.count, 100u);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 100.0);
  EXPECT_DOUBLE_EQ(d.p50, 50.0);  // nearest-rank: ceil(0.5*100) = 50th
  EXPECT_DOUBLE_EQ(d.p90, 90.0);
  EXPECT_DOUBLE_EQ(d.p99, 99.0);
  EXPECT_DOUBLE_EQ(d.mean, 50.5);
  // Sample stddev of 1..100 is sqrt(842.5) = 29.0115...
  EXPECT_NEAR(d.stddev, 29.0115, 1e-3);
}

TEST(DistSummary, SmallSamples) {
  auto empty = dist_summary::of({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);

  auto one = dist_summary::of({7.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);

  auto two = dist_summary::of({1.0, 3.0});
  EXPECT_DOUBLE_EQ(two.mean, 2.0);
  EXPECT_DOUBLE_EQ(two.p50, 1.0);  // nearest-rank: ceil(0.5*2) = 1st
  EXPECT_DOUBLE_EQ(two.max, 3.0);
  EXPECT_NEAR(two.stddev, std::sqrt(2.0), 1e-12);
}

// --- JSON ---------------------------------------------------------------

TEST(JsonWriter, RoundTripsDocuments) {
  json doc = json::object();
  doc["name"] = json("modcon \"quoted\" \\ slash \n tab\t");
  doc["i"] = json(-42);
  doc["u"] = json(std::uint64_t{18446744073709551615ull});
  doc["f"] = json(0.0553);
  doc["yes"] = json(true);
  doc["null"] = json();
  json arr = json::array();
  for (int i = 0; i < 4; ++i) arr.push_back(json(i * 1.5));
  doc["xs"] = std::move(arr);

  json parsed = json::parse(doc.dump(2));
  EXPECT_EQ(parsed, doc);
  // Compact and indented forms parse to the same document.
  EXPECT_EQ(json::parse(doc.dump(-1)), doc);
  // Serialization is deterministic (insertion-ordered members).
  EXPECT_EQ(doc.dump(2), json::parse(doc.dump(2)).dump(2));
}

TEST(JsonWriter, ParsesEscapesAndRejectsGarbage) {
  EXPECT_EQ(json::parse(R"("aA\n")").as_string(), "aA\n");
  EXPECT_EQ(json::parse("[1, 2.5, -3]").at(2).as_int(), -3);
  EXPECT_THROW(json::parse("{\"a\": }"), json_error);
  EXPECT_THROW(json::parse("[1, 2"), json_error);
  EXPECT_THROW(json::parse("true false"), json_error);
  EXPECT_THROW(json::parse(""), json_error);
}

TEST(JsonWriter, DoublesSurviveShortestRoundTrip) {
  for (double x : {0.1, 1.0 / 3.0, 6.02e23, -1.5e-9, 29.011491975882016}) {
    json parsed = json::parse(json(x).dump(-1));
    EXPECT_DOUBLE_EQ(parsed.as_double(), x);
  }
  // Integral doubles keep a decimal point so type round-trips as double.
  EXPECT_EQ(json(2.0).dump(-1), "2.0");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  // JSON has no NaN/Inf tokens; the writer must degrade to null rather
  // than emit an unparseable document.
  EXPECT_EQ(json(std::nan("")).dump(-1), "null");
  EXPECT_EQ(json(std::numeric_limits<double>::infinity()).dump(-1), "null");
  json doc = json::object();
  doc["bad"] = json(0.0 / 0.0);
  doc["good"] = json(1.5);
  json back = json::parse(doc.dump(2));
  EXPECT_TRUE(back.find("bad")->is_null());
  EXPECT_DOUBLE_EQ(back.find("good")->as_double(), 1.5);
}

TEST(ExperimentJson, DegenerateSummariesStayValidJson) {
  // A cell whose every trial hits the step limit completes zero trials:
  // all distributions are empty and every percentile is undefined.  The
  // artifact must still parse, with nulls in place of the statistics.
  auto s = run_experiment(
      {
          .label = "degenerate",
          .build = consensus_builder(),
          .n = 4,
          .trials = 4,
          .limits = {.max_steps = 1},
      },
      {.threads = 2});
  EXPECT_EQ(s.completed, 0u);

  std::string text = to_json(s, /*include_records=*/true).dump(2);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  json back = json::parse(text);  // must not throw
  EXPECT_EQ(back["total_ops"]["count"].as_uint(), 0u);
  EXPECT_TRUE(back["total_ops"].find("mean")->is_null());
  EXPECT_TRUE(back["total_ops"].find("p99")->is_null());
  EXPECT_TRUE(back["steps"].find("p50")->is_null());
}

TEST(ExperimentJson, SummarySerializesWithSchemaFields) {
  auto s = run_experiment(small_grid_cell("json/cell", 5), {.threads = 2});
  json j = to_json(s, /*include_records=*/true);
  EXPECT_EQ(j["label"].as_string(), "json/cell");
  EXPECT_EQ(j["config"]["n"].as_uint(), 4u);
  EXPECT_EQ(j["counts"]["trials"].as_uint(), 24u);
  EXPECT_EQ(j["trials"].size(), 24u);
  EXPECT_EQ(j["total_ops"]["count"].as_uint(),
            static_cast<std::uint64_t>(s.completed));

  // Round-trips through text.
  json back = json::parse(j.dump(2));
  EXPECT_EQ(back, j);

  json report = make_report_skeleton("unit");
  EXPECT_EQ(report["schema"].as_string(), kExperimentSchemaName);
  EXPECT_EQ(report["schema_version"].as_int(), kExperimentSchemaVersion);
  report["experiments"].push_back(std::move(j));
  EXPECT_EQ(json::parse(report.dump(2)), report);
}

}  // namespace
}  // namespace modcon::analysis
