// Quorum systems: the Theorem 8 condition, sizes, and Theorem 9's
// (Bollobás) optimality accounting.
#include "quorum/quorum_system.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "quorum/verify.h"
#include "util/binomial.h"
#include "util/bits.h"

namespace modcon {
namespace {

TEST(BinaryQuorums, ExactLayout) {
  auto qs = make_binary_quorums();
  EXPECT_EQ(qs->max_values(), 2u);
  EXPECT_EQ(qs->pool_size(), 2u);
  EXPECT_EQ(qs->write_quorum(0), std::vector<std::uint32_t>{0});
  EXPECT_EQ(qs->read_quorum(0), std::vector<std::uint32_t>{1});
  EXPECT_EQ(qs->write_quorum(1), std::vector<std::uint32_t>{1});
  EXPECT_EQ(qs->read_quorum(1), std::vector<std::uint32_t>{0});
}

TEST(BinaryQuorums, RatifierWorkBoundIsFourOps) {
  auto qs = make_binary_quorums();
  // |W| + |R| + 2 = 4 operations; pool + proposal = 3 registers (§6.2).
  EXPECT_EQ(qs->max_write_quorum() + qs->max_read_quorum() + 2, 4u);
  EXPECT_EQ(qs->pool_size() + 1, 3u);
}

TEST(BinaryQuorums, RejectsOutOfRange) {
  auto qs = make_binary_quorums();
  EXPECT_THROW(qs->write_quorum(2), invariant_error);
  EXPECT_THROW(qs->read_quorum(5), invariant_error);
}

// --- shared property suite over all systems and many m ---

struct quorum_case {
  const char* kind;
  std::uint64_t m;
};

std::shared_ptr<const quorum_system> build(const quorum_case& c) {
  if (std::string(c.kind) == "binary") return make_binary_quorums();
  if (std::string(c.kind) == "bollobas") return make_bollobas_quorums(c.m);
  return make_bitvector_quorums(c.m);
}

class QuorumProperty : public ::testing::TestWithParam<quorum_case> {};

TEST_P(QuorumProperty, Theorem8ConditionHolds) {
  auto qs = build(GetParam());
  auto violation = check_ratifier_condition(*qs, /*limit=*/512);
  EXPECT_FALSE(violation.has_value())
      << qs->name() << " m=" << qs->max_values() << ": "
      << violation->describe();
}

TEST_P(QuorumProperty, QuorumsStayInsidePoolAndSorted) {
  auto qs = build(GetParam());
  std::uint64_t limit = std::min<std::uint64_t>(qs->max_values(), 300);
  for (std::uint64_t v = 0; v < limit; ++v) {
    for (auto quorum : {qs->write_quorum(v), qs->read_quorum(v)}) {
      EXPECT_FALSE(quorum.empty());
      for (std::size_t i = 0; i + 1 < quorum.size(); ++i)
        EXPECT_LT(quorum[i], quorum[i + 1]);
      EXPECT_LT(quorum.back(), qs->pool_size());
    }
  }
}

TEST_P(QuorumProperty, SizesMatchDeclaredMaxima) {
  auto qs = build(GetParam());
  std::uint64_t limit = std::min<std::uint64_t>(qs->max_values(), 300);
  for (std::uint64_t v = 0; v < limit; ++v) {
    EXPECT_LE(qs->write_quorum(v).size(), qs->max_write_quorum());
    EXPECT_LE(qs->read_quorum(v).size(), qs->max_read_quorum());
  }
}

TEST_P(QuorumProperty, BollobasInequalityHolds) {
  // Theorem 9: any family with A_i ∩ B_j = ∅ iff i = j satisfies
  // Σ C(a_i + b_i, a_i)^{-1} <= 1.
  auto qs = build(GetParam());
  EXPECT_LE(bollobas_sum(*qs, /*limit=*/2000), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, QuorumProperty,
    ::testing::Values(
        quorum_case{"binary", 2}, quorum_case{"bollobas", 2},
        quorum_case{"bollobas", 3}, quorum_case{"bollobas", 4},
        quorum_case{"bollobas", 7}, quorum_case{"bollobas", 16},
        quorum_case{"bollobas", 100}, quorum_case{"bollobas", 257},
        quorum_case{"bollobas", 1u << 16}, quorum_case{"bitvector", 2},
        quorum_case{"bitvector", 3}, quorum_case{"bitvector", 5},
        quorum_case{"bitvector", 16}, quorum_case{"bitvector", 100},
        quorum_case{"bitvector", 1u << 16}),
    [](const auto& info) {
      return std::string(info.param.kind) + "_m" +
             std::to_string(info.param.m);
    });

TEST(BollobasQuorums, PoolSizeIsLgPlusThetaLogLog) {
  for (unsigned bits = 1; bits <= 24; ++bits) {
    std::uint64_t m = 1ull << bits;
    auto qs = make_bollobas_quorums(m);
    EXPECT_GE(qs->pool_size(), bits);
    EXPECT_LE(qs->pool_size(), bits + 2 * ceil_log2(bits + 1) + 3);
  }
}

TEST(BollobasQuorums, BeatsOrMatchesBitvectorSpace) {
  for (std::uint64_t m : {4ull, 16ull, 256ull, 65536ull, 1ull << 20}) {
    auto bol = make_bollobas_quorums(m);
    auto bv = make_bitvector_quorums(m);
    EXPECT_LE(bol->pool_size(), bv->pool_size()) << "m=" << m;
  }
}

TEST(BollobasQuorums, ReadQuorumIsComplementOfWriteQuorum) {
  auto qs = make_bollobas_quorums(20);
  for (word v = 0; v < 20; ++v) {
    auto w = qs->write_quorum(v);
    auto r = qs->read_quorum(v);
    EXPECT_EQ(w.size() + r.size(), qs->pool_size());
    std::vector<bool> seen(qs->pool_size(), false);
    for (auto i : w) seen[i] = true;
    for (auto i : r) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
    for (bool b : seen) EXPECT_TRUE(b);
  }
}

TEST(BollobasQuorums, DistinctValuesGetDistinctQuorums) {
  auto qs = make_bollobas_quorums(1000);
  std::set<std::vector<std::uint32_t>> quorums;
  for (word v = 0; v < 1000; ++v) quorums.insert(qs->write_quorum(v));
  EXPECT_EQ(quorums.size(), 1000u);
}

TEST(BitvectorQuorums, SpaceIsTwiceLgM) {
  for (unsigned bits = 1; bits <= 24; ++bits) {
    std::uint64_t m = 1ull << bits;
    auto qs = make_bitvector_quorums(m);
    EXPECT_EQ(qs->pool_size(), 2 * bits);
    // Ratifier register count 2*lg m + 1 and work <= 2*lg m + 2 (§6.2).
    EXPECT_EQ(qs->max_write_quorum() + qs->max_read_quorum() + 2,
              2 * bits + 2);
  }
}

TEST(BitvectorQuorums, HandlesNonPowerOfTwoM) {
  auto qs = make_bitvector_quorums(5);
  EXPECT_EQ(qs->pool_size(), 2 * 3u);
  auto violation = check_ratifier_condition(*qs, 5);
  EXPECT_FALSE(violation.has_value());
}

TEST(BollobasQuorums, MinimalityOfPool) {
  // A pool one smaller cannot host m pairwise-incomparable ⌊k/2⌋-sets.
  for (std::uint64_t m : {3ull, 10ull, 100ull, 4000ull}) {
    auto qs = make_bollobas_quorums(m);
    unsigned k = qs->pool_size();
    EXPECT_LT(binomial(k - 1, (k - 1) / 2), m);
  }
}

}  // namespace
}  // namespace modcon
