// Conciliators: Theorem 7's work bounds and probabilistic agreement, the
// fixed-probability baseline, validity and coherence as weak consensus
// objects.
#include "core/conciliator/impatient.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/conciliator/fixed_probability.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"
#include "util/stats.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

analysis::sim_object_builder impatient_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder fixed_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<fixed_probability_conciliator<sim_env>>(mem);
  };
}

TEST(ImpatientConciliator, SoloProcessKeepsItsValue) {
  sim::round_robin adv;
  auto res = run_object_trial(impatient_builder(), {7}, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_EQ(res.outputs[0], (decided{false, 7}));
}

TEST(ImpatientConciliator, NeverDecides) {
  // Coherence is satisfied vacuously: the decision bit is always 0.
  sim::random_oblivious adv;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(impatient_builder(),
                                make_inputs(input_pattern::alternating, 5,
                                            5, seed),
                                adv, opts);
    ASSERT_TRUE(res.completed());
    for (const decided& d : res.outputs) EXPECT_FALSE(d.decide);
  }
}

TEST(ImpatientConciliator, ValidityOverManySeeds) {
  sim::random_oblivious adv;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto inputs = make_inputs(input_pattern::random_m, 6, 4, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

TEST(ImpatientConciliator, SupportsArbitrarilyManyValues) {
  // §5.2: unlike shared-coin conciliators, first-mover works for any m.
  sim::random_oblivious adv;
  auto inputs = make_inputs(input_pattern::distinct, 16, 16, 1);
  auto res = run_object_trial(impatient_builder(), inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_TRUE(res.valid(inputs));
}

TEST(ImpatientConciliator, IndividualWorkBoundIsDeterministic) {
  // <= 2 lg n + O(1) for every schedule and every coin outcome: after
  // ceil(lg n) misses the write probability is 1.
  for (std::size_t n : {2u, 3u, 8u, 17u, 64u, 256u}) {
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      sim::random_oblivious adv;
      auto inputs = make_inputs(input_pattern::alternating, n, 2, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_LE(res.max_individual_ops,
                impatient_conciliator<sim_env>::individual_work_bound(n))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ImpatientConciliator, IndividualWorkBoundUnderAttack) {
  // The bound is worst-case, so it must also hold under the greedy
  // location-oblivious attacker.
  for (std::size_t n : {4u, 16u, 64u}) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      sim::greedy_overwrite adv(/*target=*/0);
      auto inputs = make_inputs(input_pattern::half_half, n, 2, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_LE(res.max_individual_ops,
                impatient_conciliator<sim_env>::individual_work_bound(n));
    }
  }
}

TEST(ImpatientConciliator, ExpectedTotalWorkIsLinear) {
  // Theorem 7: expected total work <= 6n.
  for (std::size_t n : {8u, 32u, 128u}) {
    running_stats total;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      sim::random_oblivious adv;
      auto inputs = make_inputs(input_pattern::half_half, n, 2, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      total.add(static_cast<double>(res.total_ops));
    }
    EXPECT_LE(total.mean(), 6.0 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST(ImpatientConciliator, AgreementProbabilityMeetsTheorem7Bound) {
  // Against the neutral scheduler and against the dedicated attackers,
  // empirical agreement must stay above δ = (1 - e^{-1/4})/4 ≈ 0.0553.
  // We compare the Wilson lower bound of the measured proportion.
  const double kDelta = impatient_conciliator<sim_env>::agreement_bound();
  ASSERT_NEAR(kDelta, 0.0553, 0.0001);
  constexpr std::size_t kTrials = 1200;
  const std::size_t n = 24;

  auto measure = [&](auto&& make_adv) {
    std::size_t agreed = 0;
    for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
      auto adv = make_adv();
      auto inputs = make_inputs(input_pattern::alternating, n, 2, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
      if (!res.completed()) continue;
      agreed += res.agreement();
    }
    return wilson_interval(agreed, kTrials);
  };

  auto neutral = measure([] { return sim::random_oblivious(); });
  EXPECT_GT(neutral.lo, kDelta) << "neutral scheduler";

  auto greedy = measure([] { return sim::greedy_overwrite(0); });
  EXPECT_GT(greedy.lo, kDelta) << "greedy overwrite attacker";

  auto stock = measure([] { return sim::stockpiler(0); });
  EXPECT_GT(stock.lo, kDelta) << "stockpiler attacker";
}

TEST(ImpatientConciliator, OmniscientAdversaryBreaksAgreement) {
  // Out-of-model ablation (E5): with coin visibility the agreement
  // probability collapses far below δ — evidence that our in-model
  // attackers' failure to break the bound is not for lack of teeth.
  constexpr std::size_t kTrials = 600;
  const std::size_t n = 24;
  std::size_t agreed = 0;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::omniscient_splitter adv(0);
    auto inputs = make_inputs(input_pattern::alternating, n, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    agreed += res.agreement();
  }
  auto ci = wilson_interval(agreed, kTrials);
  EXPECT_LT(ci.hi, 0.05) << "omniscient splitter should crush agreement";
}

TEST(ImpatientConciliator, WaitFreeUnderCrashes) {
  // Survivors finish regardless of how many others crash mid-protocol.
  sim::random_oblivious adv;
  trial_options opts;
  opts.faults.crashes = {{0, 1}, {1, 2}, {2, 0}};
  auto inputs = make_inputs(input_pattern::alternating, 6, 3, 3);
  auto res = run_object_trial(impatient_builder(), inputs, adv, opts);
  EXPECT_EQ(res.status, sim::run_status::no_runnable);
  EXPECT_EQ(res.outputs.size(), 3u);  // the three survivors
  EXPECT_TRUE(res.valid(inputs));
}

TEST(FixedProbabilityConciliator, ValidityAndNoDecision) {
  sim::random_oblivious adv;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto inputs = make_inputs(input_pattern::random_m, 5, 3, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(fixed_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs));
    for (const decided& d : res.outputs) EXPECT_FALSE(d.decide);
  }
}

TEST(FixedProbabilityConciliator, IndividualWorkGrowsLinearly) {
  // The baseline's solo individual work is Θ(n) (expected 4n ops at
  // p = 1/(2n)) versus the impatient conciliator's O(log n): the gap the
  // paper's protocol closes (E9).
  for (std::size_t n : {8u, 64u}) {
    running_stats solo_fixed, solo_impatient;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      trial_options opts;
      opts.seed = seed;
      {
        sim::fixed_order adv(sim::fixed_order::mode::sequential);
        auto res = run_object_trial(
            fixed_builder(), make_inputs(input_pattern::unanimous, n, 2, 0),
            adv, opts);
        ASSERT_TRUE(res.completed());
        solo_fixed.add(static_cast<double>(res.max_individual_ops));
      }
      {
        sim::fixed_order adv(sim::fixed_order::mode::sequential);
        auto res = run_object_trial(
            impatient_builder(),
            make_inputs(input_pattern::unanimous, n, 2, 0), adv, opts);
        ASSERT_TRUE(res.completed());
        solo_impatient.add(static_cast<double>(res.max_individual_ops));
      }
    }
    EXPECT_GT(solo_fixed.mean(), solo_impatient.mean()) << "n=" << n;
    if (n >= 64)
      EXPECT_GT(solo_fixed.mean(),
                static_cast<double>(n));  // Θ(n) vs 2 lg n + O(1)
  }
}

TEST(FixedProbabilityConciliator, AgreementStaysConstant) {
  const std::size_t n = 16;
  std::size_t agreed = 0;
  constexpr std::size_t kTrials = 500;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, n, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(fixed_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    agreed += res.agreement();
  }
  EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.05);
}

TEST(ImpatientConciliator, RejectsBotInput) {
  sim::round_robin adv;
  EXPECT_THROW(run_object_trial(impatient_builder(), {kBot}, adv),
               invariant_error);
}

}  // namespace
}  // namespace modcon
