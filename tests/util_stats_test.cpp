#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modcon {
namespace {

TEST(RunningStats, MeanAndVariance) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance (n-1)
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  running_stats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleSet, Quantiles) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, QuantileAfterLateAdd) {
  sample_set s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
  s.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(SampleSet, Empty) {
  sample_set s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Wilson, CentersOnEstimate) {
  auto ci = wilson_interval(500, 1000);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.5);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.96 * 0.5 / std::sqrt(1000.0), 0.005);
}

TEST(Wilson, ExtremesStayInUnitInterval) {
  auto zero = wilson_interval(0, 50);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  auto one = wilson_interval(50, 50);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
}

TEST(Wilson, NoTrials) {
  auto ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Wilson, NarrowsWithSamples) {
  auto small = wilson_interval(5, 10);
  auto large = wilson_interval(5000, 10000);
  EXPECT_GT(small.hi - small.lo, large.hi - large.lo);
}

}  // namespace
}  // namespace modcon
