// The applications layer: universal construction and test-and-set built
// on the paper's consensus objects — linearizability checked end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "apps/objects.h"
#include "apps/universal.h"
#include "core/modcon.h"
#include "rt/runner.h"
#include "sim/adversaries/adversaries.h"
#include "sim/world.h"

namespace modcon::apps {
namespace {

using sim::sim_env;

template <typename Env>
object_factory<Env> consensus_factory(address_space& mem, std::uint64_t m) {
  auto qs = m <= 2 ? make_binary_quorums() : make_bollobas_quorums(m);
  return [&mem, qs]() -> std::unique_ptr<deciding_object<Env>> {
    return make_impatient_consensus<Env>(mem, qs);
  };
}

// Program: perform `ops` increments of 1 and fold the returned counter
// values into a checksum (sum), so the test can recover every result.
proc<word> counter_worker(sim_env& env, consensus_log<sim_env>& log,
                          int ops, std::vector<word>* results) {
  universal_object<sim_env, seq_counter> counter(log);
  for (int i = 0; i < ops; ++i) {
    word r = co_await counter.perform(env, 1);
    results->push_back(r);
  }
  co_return 0;
}

TEST(Universal, CounterLinearizes) {
  // n processes × k increments: the multiset of returned values must be
  // exactly {1, ..., n*k} — each increment observed a unique
  // linearization point.
  const std::size_t n = 4;
  const int k = 5;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    sim::random_oblivious adv;
    sim::sim_world w(n, adv, seed);
    // The universal log needs consensus on packed (pid, op) words.
    consensus_log<sim_env> log(
        w, consensus_factory<sim_env>(w, word{1} << 44));
    std::vector<std::vector<word>> results(n);
    for (process_id p = 0; p < n; ++p) {
      w.spawn([&log, &results, p](sim_env& e) {
        return counter_worker(e, log, k, &results[p]);
      });
    }
    ASSERT_TRUE(w.run(50'000'000).ok()) << "seed " << seed;

    std::vector<word> all;
    for (const auto& r : results) {
      // Each process's own results are strictly increasing (program
      // order respected).
      EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
      all.insert(all.end(), r.begin(), r.end());
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), n * k);
    for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i + 1);
  }
}

proc<word> cas_worker(sim_env& env, consensus_log<sim_env>& log) {
  universal_object<sim_env, seq_cas_register> reg(log);
  word won = co_await reg.perform(
      env, seq_cas_register::make_op(0, env.pid() + 1));
  co_return won;
}

TEST(Universal, CasElectsExactlyOneWinner) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::size_t n = 5;
    sim::random_oblivious adv;
    sim::sim_world w(n, adv, seed);
    consensus_log<sim_env> log(
        w, consensus_factory<sim_env>(w, word{1} << 44));
    for (process_id p = 0; p < n; ++p)
      w.spawn([&log](sim_env& e) { return cas_worker(e, log); });
    ASSERT_TRUE(w.run(50'000'000).ok());
    int winners = 0;
    for (process_id p = 0; p < n; ++p) winners += *w.output_of(p) == 1;
    EXPECT_EQ(winners, 1) << "seed " << seed;
  }
}

proc<word> queue_worker(sim_env& env, consensus_log<sim_env>& log,
                        std::vector<word>* dequeued) {
  universal_object<sim_env, seq_queue> q(log);
  // Enqueue two tagged items, then dequeue two.
  co_await q.perform(env, 1 + env.pid() * 2);
  co_await q.perform(env, 1 + env.pid() * 2 + 1);
  dequeued->push_back(co_await q.perform(env, 0));
  dequeued->push_back(co_await q.perform(env, 0));
  co_return 0;
}

TEST(Universal, QueueConservesAndOrdersItems) {
  const std::size_t n = 3;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    sim::random_oblivious adv;
    sim::sim_world w(n, adv, seed);
    consensus_log<sim_env> log(
        w, consensus_factory<sim_env>(w, word{1} << 44));
    std::vector<std::vector<word>> deq(n);
    for (process_id p = 0; p < n; ++p) {
      w.spawn([&log, &deq, p](sim_env& e) {
        return queue_worker(e, log, &deq[p]);
      });
    }
    ASSERT_TRUE(w.run(50'000'000).ok());
    // 2n enqueues and 2n dequeues on a queue that never goes negative in
    // the agreed order: every dequeue must have returned an item, and
    // the union of dequeued items = the union of enqueued items.
    std::multiset<word> got;
    for (const auto& d : deq)
      for (word x : d) {
        EXPECT_NE(x, kBot);
        got.insert(x);
      }
    std::multiset<word> want;
    for (process_id p = 0; p < n; ++p) {
      want.insert(p * 2);
      want.insert(p * 2 + 1);
    }
    EXPECT_EQ(got, want) << "seed " << seed;
    // FIFO per producer: each process's first item leaves before its
    // second (they were enqueued in program order).
    // (Checked implicitly by the conservation test plus the replicas'
    // identical logs; a direct check would need the global dequeue
    // order, which per-process views don't expose.)
  }
}

TEST(TestAndSet, ExactlyOneWinnerAcrossSchedulers) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::size_t n = 6;
    sim::random_oblivious adv;
    sim::sim_world w(n, adv, seed);
    auto tas = std::make_shared<test_and_set<sim_env>>(
        make_impatient_consensus<sim_env>(w, make_bollobas_quorums(n)));
    for (process_id p = 0; p < n; ++p) {
      w.spawn([tas](sim_env& e) -> proc<word> {
        struct helper {
          static proc<word> go(sim_env& env, test_and_set<sim_env>& t) {
            co_return co_await t.set(env);
          }
        };
        return helper::go(e, *tas);
      });
    }
    ASSERT_TRUE(w.run(10'000'000).ok());
    int winners = 0;
    for (process_id p = 0; p < n; ++p) winners += *w.output_of(p);
    EXPECT_EQ(winners, 1) << "seed " << seed;
  }
}

TEST(TestAndSet, WinnerSurvivesCrashStorm) {
  // With crashes, at most one survivor may have won; if the winner is
  // among the survivors, everyone else lost.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const std::size_t n = 6;
    sim::random_oblivious adv;
    sim::sim_world w(n, adv, seed);
    auto tas = std::make_shared<test_and_set<sim_env>>(
        make_impatient_consensus<sim_env>(w, make_bollobas_quorums(n)));
    for (process_id p = 0; p < n; ++p) {
      w.spawn([tas](sim_env& e) -> proc<word> {
        struct helper {
          static proc<word> go(sim_env& env, test_and_set<sim_env>& t) {
            co_return co_await t.set(env);
          }
        };
        return helper::go(e, *tas);
      });
    }
    w.crash_after(0, seed % 3);
    w.crash_after(3, seed % 5);
    w.run(10'000'000);
    int winners = 0;
    for (process_id p = 0; p < n; ++p)
      if (auto out = w.output_of(p)) winners += static_cast<int>(*out);
    EXPECT_LE(winners, 1) << "seed " << seed;
  }
}

// Real threads: the same universal counter under genuine parallelism.
TEST(Universal, CounterOnRealThreads) {
  const std::size_t n = 4;
  const int k = 4;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    rt::arena mem;
    consensus_log<rt::rt_env> log(
        mem, consensus_factory<rt::rt_env>(mem, word{1} << 44));
    struct helper {
      static proc<word> go(rt::rt_env& env, consensus_log<rt::rt_env>& l,
                           int ops) {
        universal_object<rt::rt_env, seq_counter> counter(l);
        word last = 0;
        for (int i = 0; i < ops; ++i) last = co_await counter.perform(env, 1);
        co_return last;
      }
    };
    auto res = rt::run_threads(
        mem, n, seed,
        [&](rt::rt_env& env) { return helper::go(env, log, k); },
        /*chaos=*/4);
    // Everyone's final result <= n*k, and at least one process saw the
    // full count (the one whose op linearized last).
    word max_seen = 0;
    for (word r : res.outputs) {
      EXPECT_LE(r, static_cast<word>(n * k));
      max_seen = std::max(max_seen, r);
    }
    EXPECT_EQ(max_seen, static_cast<word>(n * k));
  }
}

}  // namespace
}  // namespace modcon::apps
