// The multi-shot machinery: object_pool lease recycling, slot_log
// correctness under fault plans, lattice agreement, the stack_spec
// registry round-trip, and the schema v4 "multi" block's thread-count
// byte-identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/json_writer.h"
#include "analysis/multi.h"
#include "check/auditor.h"
#include "core/deciding.h"
#include "core/consensus/stack_spec.h"
#include "multi/lattice.h"
#include "multi/object_pool.h"
#include "multi/slot_log.h"
#include "rt/arena.h"
#include "sim/adversaries/adversaries.h"
#include "sim/world.h"

namespace modcon {
namespace {

using analysis::multi_grid;
using analysis::multi_trial_options;
using sim::sim_env;

// --- object_pool --------------------------------------------------------

TEST(ObjectPool, RecyclesExtentsAcrossLeases) {
  rt::arena mem;
  multi::object_pool pool(mem, 8);

  auto a = pool.open();
  address_space& va = pool.view(a);
  reg_id first = va.alloc_block(8, 7);
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(mem.at(first + i).load(), 7u);
  pool.release(a);

  // The next lease gets the same extent back, re-initialized.
  auto b = pool.open();
  reg_id again = pool.view(b).alloc_block(8, 3);
  EXPECT_EQ(again, first);
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(mem.at(again + i).load(), 3u);

  auto s = pool.stats();
  EXPECT_EQ(s.extents_created, 1u);
  EXPECT_EQ(s.extents_reused, 1u);
  EXPECT_EQ(s.words_served, 16u);
  EXPECT_EQ(s.parent_words, 8u);
  EXPECT_TRUE(pool.recycling());
}

TEST(ObjectPool, OversizeBlocksAreLeasedAndRecycled) {
  rt::arena mem;
  multi::object_pool pool(mem, 4);
  auto a = pool.open();
  reg_id wide = pool.view(a).alloc_block(16, kBot);  // > extent_words
  pool.release(a);
  // A same-or-smaller oversize allocation reuses the freed wide extent.
  auto b = pool.open();
  reg_id wide2 = pool.view(b).alloc_block(10, 1);
  EXPECT_EQ(wide2, wide);
  EXPECT_EQ(pool.stats().extents_reused, 1u);
}

TEST(ObjectPool, LazyAllocationsChargeTheRightLease) {
  // Two leases interleave allocations — the pattern of two slots' objects
  // growing lazily at the same time.
  rt::arena mem;
  multi::object_pool pool(mem, 4);
  auto a = pool.open();
  auto b = pool.open();
  pool.view(a).alloc(1);
  pool.view(b).alloc(2);
  pool.view(a).alloc(3);
  EXPECT_EQ(pool.view(a).allocated(), 2u);
  EXPECT_EQ(pool.view(b).allocated(), 1u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.stats().leases_released, 2u);
}

TEST(ObjectPool, DoubleReleaseAndUseAfterReleaseAssert) {
  rt::arena mem;
  multi::object_pool pool(mem, 4);
  auto a = pool.open();
  address_space& view = pool.view(a);
  view.alloc(1);
  pool.release(a);
  EXPECT_THROW(pool.release(a), invariant_error);
  EXPECT_THROW(view.alloc(2), invariant_error);
}

TEST(ObjectPool, PassThroughWhenParentCannotReinit) {
  // A minimal parent without reinit support: the pool must degrade to a
  // pass-through allocator instead of failing.
  class plain_space final : public address_space {
   public:
    reg_id alloc(word) override { return next_++; }
    reg_id alloc_block(std::uint32_t count, word) override {
      reg_id first = next_;
      next_ += count;
      return first;
    }
    std::uint32_t allocated() const override { return next_; }

   private:
    reg_id next_ = 0;
  };
  plain_space mem;
  multi::object_pool pool(mem, 4);
  auto a = pool.open();
  pool.view(a).alloc_block(3, kBot);
  pool.release(a);
  EXPECT_FALSE(pool.recycling());
  auto b = pool.open();
  pool.view(b).alloc_block(3, kBot);
  EXPECT_EQ(pool.stats().extents_reused, 0u);
  EXPECT_GE(pool.stats().parent_words, 6u);
}

// --- slot_log via the sim trial runner ----------------------------------

multi_grid small_cell(const char* stack = "impatient") {
  multi_grid cell;
  cell.label = "multi_test";
  cell.spec = stack_for(stack);
  cell.n = 4;
  cell.shards = 2;
  cell.slots = 8;
  cell.extent_words = 32;
  return cell;
}

TEST(SlotLog, FaultFreeTrialDecidesAgreesAndReclaims) {
  auto cell = small_cell();
  multi_trial_options opts;
  opts.seed = 0xfeed;
  opts.audit.enabled = true;
  auto res = analysis::run_multi_trial(cell, opts);

  EXPECT_EQ(res.base.status, sim::run_status::all_halted);
  EXPECT_TRUE(res.slots_agree);
  EXPECT_TRUE(res.slots_valid);
  EXPECT_TRUE(res.base.agreement());  // digests fold the whole log
  EXPECT_EQ(res.proposals, cell.n * cell.shards * cell.slots);
  EXPECT_EQ(res.decisions + res.fast_path_hits, res.proposals);
  // Every process consumed every slot, so the whole log reclaimed.
  EXPECT_EQ(res.slots_reclaimed, cell.shards * cell.slots);
  EXPECT_TRUE(res.base.audit.has_value());
  EXPECT_TRUE(res.base.audit->ok()) << "audit: " << res.base.audit->note;
}

TEST(SlotLog, PoolReusesRegistersAcrossSlots) {
  auto cell = small_cell();
  cell.slots = 32;  // enough slots for reclamation to lap the pool
  multi_trial_options opts;
  opts.seed = 3;
  auto res = analysis::run_multi_trial(cell, opts);
  EXPECT_TRUE(res.slots_agree && res.slots_valid);
  EXPECT_GT(res.pool.extents_reused, 0u);
  // Reuse means the parent footprint stays below the words handed out.
  EXPECT_LT(res.pool.parent_words, res.pool.words_served);
}

TEST(SlotLog, InvariantsHoldUnderCrashesAndRestarts) {
  // E15-style process-fault plans; per-slot agreement/validity and the
  // armed auditor must stay clean through all of them.
  struct plan_case {
    const char* name;
    analysis::fault_plan plan;
  };
  const plan_case cases[] = {
      {"crash2", analysis::fault_plan{}.crash(1, 25).crash(3, 60)},
      {"restart2", analysis::fault_plan{}.restart(0, 20).restart(2, 45)},
      {"storm",
       analysis::fault_plan{}.crash(3, 30).restart(1, 15).restart(2, 70)},
  };
  for (const auto& c : cases) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto cell = small_cell();
      multi_trial_options opts;
      opts.seed = seed * 977;
      opts.faults = c.plan;
      opts.audit.enabled = true;
      auto res = analysis::run_multi_trial(cell, opts);
      EXPECT_TRUE(res.slots_agree)
          << c.name << " seed " << seed << ": per-slot disagreement";
      EXPECT_TRUE(res.slots_valid)
          << c.name << " seed " << seed << ": invalid slot decision";
      ASSERT_TRUE(res.base.audit.has_value());
      EXPECT_NE(res.base.audit->status, check::audit_status::violated)
          << c.name << " seed " << seed << ": "
          << (res.base.audit->violations.empty()
                  ? res.base.audit->note
                  : res.base.audit->violations.front().detail);
    }
  }
}

TEST(SlotLog, RegisterFaultsAreRejected) {
  auto cell = small_cell();
  multi_trial_options opts;
  opts.faults.regular_registers(4);
  EXPECT_THROW(analysis::run_multi_trial(cell, opts), invariant_error);
}

TEST(SlotLog, RtBackendAgreesToo) {
  auto cell = small_cell();
  multi_trial_options opts;
  opts.seed = 11;
  opts.audit.enabled = true;
  auto res = analysis::run_rt_multi_trial(cell, opts);
  EXPECT_EQ(res.base.status, sim::run_status::all_halted);
  EXPECT_TRUE(res.slots_agree);
  EXPECT_TRUE(res.slots_valid);
  EXPECT_TRUE(res.base.agreement());
  ASSERT_TRUE(res.base.audit.has_value());
  EXPECT_TRUE(res.base.audit->ok());
}

// --- per-slot auditor ----------------------------------------------------

check::slot_audit_spec two_by_two() {
  check::slot_audit_spec spec;
  spec.n = 2;
  spec.slots = 2;
  // pid p proposes p for slot 0 and p+1 for slot 1.
  spec.proposals = {0, 1, 1, 2};
  return spec;
}

TEST(AuditSlots, CleanLogPasses) {
  auto spec = two_by_two();
  std::vector<check::slot_output> outs = {
      {0, 0, 1}, {1, 0, 1}, {0, 1, 2}, {1, 1, 2}};
  check::audit_report rep;
  check::audit_slots(outs, spec, rep);
  EXPECT_TRUE(rep.ok()) << rep.note;
}

TEST(AuditSlots, FlagsSlotDisagreement) {
  auto spec = two_by_two();
  std::vector<check::slot_output> outs = {{0, 0, 0}, {1, 0, 1}};
  check::audit_report rep;
  check::audit_slots(outs, spec, rep);
  ASSERT_EQ(rep.status, check::audit_status::violated);
  EXPECT_EQ(rep.violations.front().kind,
            check::violation_kind::slot_coherence);
}

TEST(AuditSlots, FlagsUnproposedValue) {
  auto spec = two_by_two();
  std::vector<check::slot_output> outs = {{0, 0, 9}};
  check::audit_report rep;
  check::audit_slots(outs, spec, rep);
  ASSERT_EQ(rep.status, check::audit_status::violated);
  EXPECT_EQ(rep.violations.front().kind, check::violation_kind::validity);
}

TEST(AuditSlots, FlagsHoleInDecidedPrefix) {
  auto spec = two_by_two();
  // pid 0 decided slot 1 but never slot 0.
  std::vector<check::slot_output> outs = {
      {0, 1, 2}, {1, 0, 1}, {1, 1, 2}};
  check::audit_report rep;
  check::audit_slots(outs, spec, rep);
  ASSERT_EQ(rep.status, check::audit_status::violated);
  EXPECT_EQ(rep.violations.front().kind, check::violation_kind::slot_prefix);
}

TEST(AuditSlots, TruncationOnlyLegalUnderProcessFaults) {
  auto spec = two_by_two();
  // pid 0 stopped after slot 0 — illegal fault-free, fine with faults.
  std::vector<check::slot_output> outs = {
      {0, 0, 1}, {1, 0, 1}, {1, 1, 2}};
  check::audit_report rep;
  check::audit_slots(outs, spec, rep);
  EXPECT_EQ(rep.status, check::audit_status::violated);

  spec.process_faults = true;
  check::audit_report rep2;
  check::audit_slots(outs, spec, rep2);
  EXPECT_TRUE(rep2.ok());
}

// --- lattice agreement ---------------------------------------------------

proc<word> lattice_join(multi::lattice_agreement<sim_env>* lat, word mask,
                        sim_env& env) {
  word out = co_await lat->join(env, mask);
  co_return encode_decided({true, out});
}

TEST(Lattice, JoinSatisfiesAllThreeProperties) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 5;
    sim::random_oblivious adv;
    sim::sim_world world(n, adv, seed);
    multi::lattice_agreement<sim_env> lat(world, n);
    for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
      word mask = word{1} << pid;
      world.spawn(
          [&lat, mask](sim_env& env) { return lattice_join(&lat, mask, env); });
    }
    ASSERT_EQ(world.run(100'000).status, sim::run_status::all_halted);
    word all = (word{1} << n) - 1;
    std::vector<word> outs;
    for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
      word out = decode_decided(*world.output_of(pid)).value;
      // Upward validity: own proposal included.
      EXPECT_NE(out & (word{1} << pid), 0u) << "seed " << seed;
      // Downward validity: nothing beyond the join of all proposals.
      EXPECT_EQ(out & ~all, 0u) << "seed " << seed;
      outs.push_back(out);
    }
    // Comparability: any two outputs are ⊆-ordered.
    for (std::size_t i = 0; i < outs.size(); ++i)
      for (std::size_t j = i + 1; j < outs.size(); ++j) {
        bool i_in_j = (outs[i] & outs[j]) == outs[i];
        bool j_in_i = (outs[i] & outs[j]) == outs[j];
        EXPECT_TRUE(i_in_j || j_in_i)
            << "seed " << seed << ": incomparable outputs " << outs[i]
            << " / " << outs[j];
      }
  }
}

// --- stack_spec registry -------------------------------------------------

TEST(StackSpec, RegistryRoundTripsThroughNames) {
  for (const std::string& name : stack_names()) {
    stack_spec spec = stack_for(name);
    auto back = name_of(spec);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, name);
    // m is a workload parameter, not part of a stack's identity.
    EXPECT_EQ(name_of(spec.with_m(1u << 20)).value_or("<none>"), name);
  }
  EXPECT_EQ(find_stack("no-such-stack"), nullptr);
  EXPECT_THROW(stack_for("no-such-stack"), invariant_error);
}

TEST(StackSpec, EveryRegistryEntryBuildsAndDecides) {
  for (const std::string& name : stack_names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const std::size_t n = 4;
      sim::random_oblivious adv;
      sim::sim_world world(n, adv, seed);
      auto build = stack_builder<sim_env>(stack_for(name));
      auto obj = build(world, n);
      ASSERT_NE(obj, nullptr) << name;
      for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid)
        world.spawn([&obj, pid](sim_env& env) {
          return invoke_encoded(*obj, env, pid % 2);
        });
      ASSERT_EQ(world.run(10'000'000).status, sim::run_status::all_halted)
          << name << " seed " << seed;
      std::set<word> decided_values;
      for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
        decided d = decode_decided(*world.output_of(pid));
        EXPECT_TRUE(d.decide) << name;
        decided_values.insert(d.value);
      }
      EXPECT_EQ(decided_values.size(), 1u) << name << " seed " << seed;
    }
  }
}

TEST(StackSpec, RoundsSentinelDistinguishesAutoFromZero) {
  stack_spec spec = stack_for("bounded");
  EXPECT_EQ(spec.rounds, stack_spec::kAutoRounds);
  EXPECT_NE(spec.with_rounds(0), spec);
  // Explicit zero survives the fluent copy (E8's ablation endpoint).
  EXPECT_EQ(spec.with_rounds(0).rounds, 0u);
  EXPECT_NE(to_string(spec).find("rounds=auto"), std::string::npos);
}

// --- schema v4 "multi" block --------------------------------------------

TEST(MultiSchema, V4BlockIsByteIdenticalAcrossThreadCounts) {
  auto cell = small_cell();
  cell.trials = 12;
  cell.base_seed = 0x5107;
  auto one = analysis::run_multi_experiment(cell, {.threads = 1});
  auto eight = analysis::run_multi_experiment(cell, {.threads = 8});
  analysis::clear_timing_measurements(one);
  analysis::clear_timing_measurements(eight);
  EXPECT_EQ(analysis::to_json(one).dump(2), analysis::to_json(eight).dump(2));

  // The block is present, the schema is current (v5 — the bump added the
  // additive "recovery" block, which this fault-free cell omits), and it
  // carries the multi accounting.
  EXPECT_EQ(analysis::kExperimentSchemaVersion, 5);
  EXPECT_EQ(analysis::make_report_skeleton("t").find("schema_version")
                ->as_uint(),
            5u);
  EXPECT_EQ(analysis::to_json(one).find("recovery"), nullptr);
  analysis::json doc = analysis::to_json(one);
  const analysis::json* multi = doc.find("multi");
  ASSERT_NE(multi, nullptr);
  EXPECT_EQ(multi->find("shards")->as_uint(), cell.shards);
  EXPECT_EQ(multi->find("slots_per_shard")->as_uint(), cell.slots);
  EXPECT_EQ(multi->find("proposals")->as_uint(),
            cell.trials * cell.n * cell.shards * cell.slots);
  EXPECT_GT(multi->find("slots_reclaimed")->as_uint(), 0u);
  EXPECT_EQ(multi->find("slots_agreed")->as_uint(), cell.trials);
  EXPECT_EQ(multi->find("slots_valid")->as_uint(), cell.trials);
}

TEST(MultiSchema, OneShotReportsOmitTheMultiBlock) {
  analysis::trial_grid cell;
  cell.label = "no_multi";
  cell.build = stack_builder<sim_env>(stack_for("impatient"));
  cell.n = 2;
  cell.trials = 4;
  auto s = analysis::run_experiment(cell);
  EXPECT_EQ(analysis::to_json(s).find("multi"), nullptr);
}

TEST(MultiProposal, DeterministicAndInRange) {
  for (std::uint64_t m : {2u, 5u, 1024u}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t slot = 0; slot < 8; ++slot)
      for (process_id pid = 0; pid < 6; ++pid) {
        auto v = analysis::multi_proposal(42, 1, slot, pid, m);
        EXPECT_LT(v, m);
        EXPECT_EQ(v, analysis::multi_proposal(42, 1, slot, pid, m));
        seen.insert(v);
      }
    if (m > 2) {
      EXPECT_GT(seen.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace modcon
