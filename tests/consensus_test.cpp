// Full consensus stacks (§4): agreement, validity, termination, the fast
// path, bounded truncation (Theorem 5), ratifier-only ladders (§4.2), and
// the observation that a consensus object satisfies both the conciliator
// and ratifier specifications (§1, §7).
#include "core/consensus/builder.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// gtest parameterized-test names must be alphanumeric.
std::string sanitize(std::string s) {
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

analysis::sim_object_builder unbounded_builder(
    std::shared_ptr<const quorum_system> qs) {
  return [qs](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, qs);
  };
}

analysis::sim_object_builder bounded_builder(
    std::shared_ptr<const quorum_system> qs, std::size_t rounds = 0) {
  return [qs, rounds](address_space& mem, std::size_t n) {
    return make_bounded_impatient_consensus<sim_env>(mem, qs, n, rounds);
  };
}

struct consensus_case {
  std::size_t n;
  std::uint64_t m;
  input_pattern pattern;
};

class ConsensusProperty : public ::testing::TestWithParam<consensus_case> {};

TEST_P(ConsensusProperty, AgreementValidityTermination) {
  auto c = GetParam();
  auto qs = c.m == 2 ? make_binary_quorums() : make_bollobas_quorums(c.m);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(c.pattern, c.n, c.m, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_TRUE(analysis::all_decided(res.outputs)) << "seed " << seed;
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, ConsensusProperty,
    ::testing::Values(
        consensus_case{1, 2, input_pattern::unanimous},
        consensus_case{2, 2, input_pattern::half_half},
        consensus_case{3, 2, input_pattern::alternating},
        consensus_case{8, 2, input_pattern::half_half},
        consensus_case{8, 2, input_pattern::random_m},
        consensus_case{33, 2, input_pattern::alternating},
        consensus_case{5, 5, input_pattern::distinct},
        consensus_case{8, 16, input_pattern::random_m},
        consensus_case{16, 100, input_pattern::random_m}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_" +
             sanitize(to_string(info.param.pattern));
    });

TEST(UnboundedConsensus, FastPathSkipsConciliators) {
  // Sequential schedule: the first process finishes R₋₁ alone and
  // decides; only the two fast-path ratifiers are ever materialized.
  auto qs = make_binary_quorums();
  sim::fixed_order adv(sim::fixed_order::mode::sequential);
  std::size_t parts = 0;
  auto build = [&](address_space& mem,
                   std::size_t) -> std::unique_ptr<deciding_object<sim_env>> {
    auto c = make_impatient_consensus<sim_env>(mem, qs);
    auto* raw = c.get();
    // Observe through a wrapper: record parts_built after the run via
    // the returned pointer (kept alive by the unique_ptr in the trial).
    struct observer final : deciding_object<sim_env> {
      std::unique_ptr<unbounded_consensus<sim_env>> inner;
      std::size_t* parts;
      proc<decided> invoke(sim_env& env, value_t v) override {
        decided d = co_await inner->invoke(env, v);
        *parts = inner->parts_built();
        co_return d;
      }
      std::string name() const override { return "observer"; }
    };
    auto o = std::make_unique<observer>();
    o->inner = std::move(c);
    o->parts = &parts;
    (void)raw;
    return o;
  };
  auto inputs = make_inputs(input_pattern::half_half, 4, 2, 1);
  auto res = run_object_trial(build, inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(parts, 2u);  // R₋₁ and R₀ only — no conciliator was built
}

TEST(UnboundedConsensus, UnanimousInputsDecideInTwoRatifiers) {
  // Acceptance makes the very first ratifier decide for everyone when
  // inputs agree, under any scheduler.
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    std::vector<value_t> inputs(6, 1);
    auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(analysis::check_acceptance(res.outputs, 1));
    // Work: one ratifier pass each (4 ops with binary quorums).
    EXPECT_LE(res.max_individual_ops, 4u);
  }
}

TEST(UnboundedConsensus, ExpectedRoundsMatchGeometricWithDelta) {
  // The expected number of conciliator rounds is at most 1/δ ≈ 18; the
  // average over trials should sit well below that (in practice the
  // random scheduler agrees much more often than the worst case δ).
  auto qs = make_binary_quorums();
  running_stats rounds;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    sim::random_oblivious adv;
    std::size_t parts = 0;
    auto build = [&](address_space& mem, std::size_t)
        -> std::unique_ptr<deciding_object<sim_env>> {
      struct observer final : deciding_object<sim_env> {
        std::unique_ptr<unbounded_consensus<sim_env>> inner;
        std::size_t* parts;
        proc<decided> invoke(sim_env& env, value_t v) override {
          decided d = co_await inner->invoke(env, v);
          *parts = inner->parts_built();
          co_return d;
        }
        std::string name() const override { return "observer"; }
      };
      auto o = std::make_unique<observer>();
      o->inner = make_impatient_consensus<sim_env>(mem, qs);
      o->parts = &parts;
      return o;
    };
    auto inputs = make_inputs(input_pattern::half_half, 8, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    // parts = 2 + 2 * conciliator rounds reached.
    rounds.add((static_cast<double>(parts) - 2.0) / 2.0);
  }
  EXPECT_LT(rounds.mean(), 18.0);
  // Contended starts rarely resolve on the fast path, so on average at
  // least one conciliator round runs.
  EXPECT_GT(rounds.mean(), 0.5);
}

TEST(BoundedConsensus, DecidesAndAgreesLikeUnbounded) {
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, 6, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(bounded_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

TEST(BoundedConsensus, ZeroRoundsAlwaysUsesFallback) {
  // With k = 0 rounds and a contended start, the prefix (two ratifiers)
  // cannot decide, so K must — and must still give consensus.
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::round_robin adv;
    auto build = [&](address_space& mem, std::size_t n)
        -> std::unique_ptr<deciding_object<sim_env>> {
      return std::make_unique<bounded_consensus<sim_env>>(
          detail::ratifier_factory<sim_env>(mem, qs),
          detail::conciliator_factory<sim_env>(mem, stack_spec{}),
          /*rounds=*/0, std::make_unique<cil_consensus<sim_env>>(mem, n));
    };
    // rounds=0 builder above bypasses the default in the helper.
    auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

TEST(BoundedConsensus, SpaceIsFixedUpFront) {
  auto qs = make_binary_quorums();
  sim::round_robin adv1, adv2;
  // Build two identical worlds; one runs, one does not.  Register count
  // must match: nothing is allocated lazily.
  sim::sim_world w1(2, adv1, 1), w2(2, adv2, 1);
  auto c1 = make_bounded_impatient_consensus<sim_env>(w1, qs, 2, 5);
  auto c2 = make_bounded_impatient_consensus<sim_env>(w2, qs, 2, 5);
  auto before = w1.allocated();
  EXPECT_EQ(before, w2.allocated());
  w1.spawn([&c1](sim_env& e) { return invoke_encoded(*c1, e, 0); });
  w1.spawn([&c1](sim_env& e) { return invoke_encoded(*c1, e, 1); });
  ASSERT_TRUE(w1.run(100000).ok());
  EXPECT_EQ(w1.allocated(), before);  // unchanged by execution
}

TEST(RatifierOnlyConsensus, DecidesUnderPriorityScheduling) {
  // §4.2: under priority scheduling the highest-priority process reaches
  // a ratifier alone, so the ladder decides.
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::priority_sched adv;
    auto build = [&](address_space& mem, std::size_t) {
      return make_ratifier_only_consensus<sim_env>(mem, qs);
    };
    auto inputs = make_inputs(input_pattern::alternating, 5, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

TEST(RatifierOnlyConsensus, DecidesUnderNoisyScheduling) {
  auto qs = make_binary_quorums();
  std::size_t done = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::noisy adv(/*sigma=*/0.8);
    auto build = [&](address_space& mem, std::size_t) {
      return make_ratifier_only_consensus<sim_env>(mem, qs, 100000);
    };
    auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 200'000;  // well below the ladder's round cap
    auto res = run_object_trial(build, inputs, adv, opts);
    if (!res.completed()) continue;
    ++done;
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement());
  }
  // Noise must resolve the overwhelming majority of executions.
  EXPECT_GE(done, 27u);
}

TEST(RatifierOnlyConsensus, LockstepSchedulerStallsIt) {
  // Round-robin keeps both camps in lockstep forever: the run hits the
  // step limit (this is exactly why conciliators exist).
  auto qs = make_binary_quorums();
  sim::round_robin adv;
  auto build = [&](address_space& mem, std::size_t) {
    return make_ratifier_only_consensus<sim_env>(mem, qs, 1000000);
  };
  trial_options opts;
  opts.limits.max_steps = 20000;
  auto res = run_object_trial(build, {0, 1}, adv, opts);
  EXPECT_EQ(res.status, sim::run_status::step_limit);
}

TEST(ConsensusAsObject, SatisfiesConciliatorAndRatifierSpecs) {
  // §1/§7: a consensus object meets both specifications — agreement with
  // probability 1 (conciliator with δ = 1) and acceptance (ratifier).
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    {  // acceptance
      std::vector<value_t> inputs(5, 0);
      auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
      EXPECT_TRUE(analysis::check_acceptance(res.outputs, 0));
    }
    {  // certain agreement
      auto inputs = make_inputs(input_pattern::half_half, 5, 2, seed);
      auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
      EXPECT_TRUE(res.agreement());
    }
  }
}

TEST(Consensus, WaitFreedomUnderMassiveCrashes) {
  // n-1 crashes: the lone survivor must still decide (wait-freedom).
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    for (process_id p = 0; p < 5; ++p)
      if (p != 2) opts.faults.crashes.push_back({p, seed % 5});
    auto inputs = make_inputs(input_pattern::alternating, 6, 2, seed);
    auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
    EXPECT_EQ(res.status, sim::run_status::no_runnable);
    // Survivors (pid 2 and 5) decided coherently and validly.
    EXPECT_TRUE(res.coherent());
    EXPECT_TRUE(res.valid(inputs));
    for (const auto& d : res.outputs) EXPECT_TRUE(d.decide);
  }
}

proc<word> decide_directly(sim_env& env, unbounded_consensus<sim_env>& c,
                           value_t v) {
  value_t out = co_await c.decide(env, v);
  co_return out;
}

TEST(UnboundedConsensus, DecideConvenienceReturnsBareValue) {
  auto qs = make_binary_quorums();
  sim::random_oblivious adv;
  sim::sim_world w(3, adv, 5);
  auto c = make_impatient_consensus<sim_env>(w, qs);
  for (process_id p = 0; p < 3; ++p) {
    w.spawn([&c, p](sim_env& e) {
      return decide_directly(e, *c, p % 2);
    });
  }
  ASSERT_TRUE(w.run(1'000'000).ok());
  word v0 = *w.output_of(0);
  EXPECT_LE(v0, 1u);
  for (process_id p = 1; p < 3; ++p) EXPECT_EQ(*w.output_of(p), v0);
}

TEST(Consensus, MValuedConsensusWithBitvectorQuorums) {
  auto qs = make_bitvector_quorums(64);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::random_m, 8, 64, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(unbounded_builder(qs), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

}  // namespace
}  // namespace modcon
