// The property auditor (check/auditor.h): scripted violations of each
// checked property must be detected with the right diagnostic, and clean
// runs of the paper's stacks must audit clean end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "check/auditor.h"
#include "check/hb.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"
#include "sim/trace.h"

namespace modcon {
namespace {

using analysis::run_object_trial;
using analysis::run_rt_object_trial;
using analysis::trial_options;
using check::audit_report;
using check::audit_spec;
using check::audit_status;
using check::violation_kind;
using sim::sim_env;
using sim::trace_event;

bool has_kind(const audit_report& rep, violation_kind k) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const check::violation& v) { return v.kind == k; });
}

audit_spec basic_spec(std::size_t n, std::vector<value_t> inputs) {
  audit_spec spec;
  spec.n = n;
  spec.inputs = std::move(inputs);
  return spec;
}

// ---------------------------------------------------------------------
// Output-level checks: validity, coherence, acceptance
// ---------------------------------------------------------------------

TEST(AuditOutputs, CleanOutputsPass) {
  audit_report rep;
  check::audit_outputs({{0, {true, 1}}, {1, {true, 1}}},
                       basic_spec(2, {0, 1}), rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditOutputs, UnproposedValueIsAValidityViolation) {
  audit_report rep;
  check::audit_outputs({{0, {false, 3}}, {1, {false, 0}}},
                       basic_spec(2, {0, 1}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::validity));
  EXPECT_EQ(rep.violations[0].pid, 0u);
  EXPECT_EQ(rep.violations[0].value, 3u);
}

TEST(AuditOutputs, DisagreementAfterADecideIsACoherenceViolation) {
  audit_report rep;
  check::audit_outputs({{0, {true, 0}}, {1, {false, 1}}},
                       basic_spec(2, {0, 1}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::coherence));
}

TEST(AuditOutputs, UndecidedDisagreementAloneIsCoherent) {
  // Without any decide bit, differing values are allowed (weak consensus
  // objects may leave processes undecided on distinct values).
  audit_report rep;
  check::audit_outputs({{0, {false, 0}}, {1, {false, 1}}},
                       basic_spec(2, {0, 1}), rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditOutputs, RatifierMustAcceptUnanimousInput) {
  audit_spec spec = basic_spec(2, {4, 4});
  spec.ratifier = true;
  audit_report rep;
  check::audit_outputs({{0, {true, 4}}, {1, {false, 4}}}, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::acceptance));
  EXPECT_EQ(rep.violations[0].pid, 1u);
}

TEST(AuditOutputs, RatifierWithMixedInputsHasNoAcceptanceObligation) {
  audit_spec spec = basic_spec(2, {0, 1});
  spec.ratifier = true;
  audit_report rep;
  check::audit_outputs({{0, {false, 0}}, {1, {false, 1}}}, spec, rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditOutputs, PropertyChecksDisarmUnderRegisterFaults) {
  audit_spec spec = basic_spec(2, {0, 1});
  spec.check_properties = false;
  audit_report rep;
  check::audit_outputs({{0, {true, 0}}, {1, {true, 1}}}, spec, rep);
  EXPECT_TRUE(rep.ok());
}

// ---------------------------------------------------------------------
// Composition invariants
// ---------------------------------------------------------------------

TEST(AuditComposition, CleanChainPasses) {
  std::vector<stage_record> recs = {
      {0, 0, 5, {false, 5}},
      {0, 1, 5, {true, 5}},
      {1, 0, 7, {false, 5}},
      {1, 1, 5, {true, 5}},
  };
  audit_report rep;
  check::audit_composition(recs, basic_spec(2, {5, 7}), rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditComposition, BrokenCarryIsFlagged) {
  // p0 left stage 0 carrying 5 but entered stage 1 with 9.
  std::vector<stage_record> recs = {
      {0, 0, 5, {false, 5}},
      {0, 1, 9, {false, 9}},
  };
  audit_report rep;
  check::audit_composition(recs, basic_spec(1, {5}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::composition));
}

TEST(AuditComposition, ContinuingPastADecideIsFlagged) {
  std::vector<stage_record> recs = {
      {0, 0, 5, {true, 5}},
      {0, 1, 5, {false, 5}},  // the exception mechanism forbids this
  };
  audit_report rep;
  check::audit_composition(recs, basic_spec(1, {5}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::composition));
}

TEST(AuditComposition, DecidedPrefixPinsLaterStages) {
  // p0 decided 5 at stage 0, yet p1 leaves stage 1 holding 7: stage 0's
  // coherence plus stage 1's validity make that impossible.
  std::vector<stage_record> recs = {
      {0, 0, 5, {true, 5}},
      {1, 0, 7, {false, 7}},  // already breaks stage-0 coherence
      {1, 1, 7, {false, 7}},
  };
  audit_report rep;
  check::audit_composition(recs, basic_spec(2, {5, 7}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::composition));
}

TEST(AuditComposition, RealComposedStackAuditsClean) {
  // Two impatient conciliators in sequence, with the log attached.
  sim::random_oblivious adv;
  composition_log log;
  const std::vector<value_t> inputs = {0, 1, 1};
  trial_options opts;
  opts.seed = 11;
  auto res = run_object_trial(
      [&log](address_space& mem, std::size_t) {
        auto s = std::make_unique<sequence<sim_env>>();
        s->append(std::make_unique<impatient_conciliator<sim_env>>(mem));
        s->append(std::make_unique<impatient_conciliator<sim_env>>(mem));
        s->attach_log(&log);
        return s;
      },
      inputs, adv, opts);
  ASSERT_TRUE(res.completed());
  audit_report rep;
  check::audit_composition(log.snapshot(), basic_spec(3, inputs), rep);
  EXPECT_TRUE(rep.ok()) << rep.violations.size() << " violations";
}

// ---------------------------------------------------------------------
// Trace replay: fault-semantics legality
// ---------------------------------------------------------------------

// A hand-built trace over one register: alloc(init), then the listed
// events.  step/pid fields are synthesized.
sim::trace scripted_trace(word init,
                          const std::vector<trace_event>& events) {
  sim::trace tr;
  tr.enable(true);
  tr.note_alloc(0, 1, init);
  std::uint64_t step = 0;
  for (trace_event e : events) {
    e.step = step++;
    tr.record(e);
  }
  return tr;
}

TEST(AuditTrace, FreshReadsAreClean) {
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 5, true},
             {0, 1, op_kind::read, 0, 5, true}});
  audit_report rep;
  check::audit_trace(tr, basic_spec(2, {5, 5}), rep);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.events_checked, 2u);
}

TEST(AuditTrace, StaleReadWithoutRegularModeIsIllegal) {
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 5, true},
             {0, 0, op_kind::write, 0, 7, true},
             {0, 1, op_kind::read, 0, 5, true}});  // previous value
  audit_report rep;
  check::audit_trace(tr, basic_spec(2, {5, 7}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::illegal_stale_read));
  const auto& v = rep.violations[0];
  EXPECT_EQ(v.pid, 1u);
  EXPECT_EQ(v.reg, 0u);
  EXPECT_EQ(v.value, 5u);
  EXPECT_FALSE(v.slice.empty());  // minimal trace context attached
}

TEST(AuditTrace, StaleReadUnderRegularModeIsLegal) {
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 5, true},
             {0, 0, op_kind::write, 0, 7, true},
             {0, 1, op_kind::read, 0, 5, true}});
  audit_spec spec = basic_spec(2, {5, 7});
  spec.regular_registers = true;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.stale_reads_matched, 1u);
}

TEST(AuditTrace, TwoGenerationsStaleIsIllegalEvenUnderRegularMode) {
  // Regular registers may serve the previous value, never older ones.
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 3, true},
             {0, 0, op_kind::write, 0, 5, true},
             {0, 0, op_kind::write, 0, 7, true},
             {0, 1, op_kind::read, 0, 3, true}});
  audit_spec spec = basic_spec(2, {3, 7});
  spec.regular_registers = true;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::illegal_stale_read));
}

TEST(AuditTrace, VisibleOmittedWriteIsFlaggedAsSuch) {
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 5, true},
             {0, 1, op_kind::write, 0, 9, false},  // omitted / missed
             {0, 0, op_kind::read, 0, 9, true}});  // ...yet visible
  audit_report rep;
  check::audit_trace(tr, basic_spec(2, {5, 9}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::omitted_write_visible));
  EXPECT_EQ(rep.unapplied_writes_seen, 1u);
}

TEST(AuditTrace, UnappliedWriteThatStaysInvisibleIsClean) {
  auto tr = scripted_trace(
      kBot, {{0, 0, op_kind::write, 0, 5, true},
             {0, 1, op_kind::write, 0, 9, false},
             {0, 0, op_kind::read, 0, 5, true}});
  audit_report rep;
  check::audit_trace(tr, basic_spec(2, {5, 9}), rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditTrace, CollectValuesAreCheckedPerRegister) {
  sim::trace tr;
  tr.enable(true);
  tr.note_alloc(0, 2, kBot);
  tr.record({0, 0, op_kind::write, 0, 5, true});
  const word observed[2] = {5, 6};  // r1 never held 6
  tr.record_collect({1, 1, op_kind::collect, 0, 0, true},
                    std::span<const word>(observed, 2));
  audit_report rep;
  check::audit_trace(tr, basic_spec(2, {5, 6}), rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::illegal_stale_read));
  EXPECT_EQ(rep.violations[0].reg, 1u);
}

TEST(AuditTrace, OverflowedTraceIsInconclusiveNotClean) {
  sim::trace tr;
  tr.enable(true);
  tr.set_max_events(2);
  tr.note_alloc(0, 1, kBot);
  tr.record({0, 0, op_kind::write, 0, 1, true});
  tr.record({1, 0, op_kind::write, 0, 2, true});
  tr.record({2, 0, op_kind::write, 0, 3, true});  // dropped
  ASSERT_TRUE(tr.overflowed());
  audit_report rep;
  check::audit_trace(tr, basic_spec(1, {1}), rep);
  EXPECT_EQ(rep.status, audit_status::inconclusive);
  EXPECT_FALSE(rep.note.empty());
}

// ---------------------------------------------------------------------
// Happens-before serializability (rt traces)
// ---------------------------------------------------------------------

TEST(AuditHb, SequentialReadAfterWriteIsClean) {
  std::vector<check::hb_event> events = {
      {0, op_kind::write, 0, 5, true, 0, 2},
      {1, op_kind::read, 0, 5, true, 3, 4},
  };
  audit_report rep;
  check::audit_hb(events, basic_spec(2, {5, 5}), {}, rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditHb, ReadOfOverwrittenValueIsUnserializable) {
  // w(1) completes, then w(2) completes, then a read begins — returning 1
  // admits no linearization over an atomic register.
  std::vector<check::hb_event> events = {
      {0, op_kind::write, 0, 1, true, 0, 2},
      {0, op_kind::write, 0, 2, true, 3, 5},
      {1, op_kind::read, 0, 1, true, 6, 8},
  };
  audit_report rep;
  check::audit_hb(events, basic_spec(2, {1, 2}), {}, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::unserializable_read));
  EXPECT_EQ(rep.violations[0].pid, 1u);
  EXPECT_FALSE(rep.violations[0].slice.empty());
}

TEST(AuditHb, OverlappingWriteMayLinearizeOnEitherSide) {
  // The read overlaps w(2), so both 1 (old) and 2 (new) are admissible.
  std::vector<check::hb_event> events = {
      {0, op_kind::write, 0, 1, true, 0, 2},
      {0, op_kind::write, 0, 2, true, 3, 9},
      {1, op_kind::read, 0, 1, true, 4, 6},
  };
  audit_report rep;
  check::audit_hb(events, basic_spec(2, {1, 2}), {}, rep);
  EXPECT_TRUE(rep.ok());
}

TEST(AuditHb, UnappliedWriteIsNeverAnAdmissibleSource) {
  std::vector<check::hb_event> events = {
      {0, op_kind::write, 0, 1, true, 0, 2},
      {0, op_kind::write, 0, 2, false, 3, 5},  // missed probabilistic write
      {1, op_kind::read, 0, 2, true, 6, 8},
  };
  audit_report rep;
  check::audit_hb(events, basic_spec(2, {1, 2}), {}, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  EXPECT_TRUE(has_kind(rep, violation_kind::unserializable_read));
}

// ---------------------------------------------------------------------
// End-to-end: audited trials over the paper's stacks
// ---------------------------------------------------------------------

analysis::sim_object_builder consensus_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

TEST(AuditTrial, CleanConsensusTrialAuditsClean) {
  sim::random_oblivious adv;
  const std::vector<value_t> inputs = {0, 1, 1, 0};
  trial_options opts;
  opts.seed = 5;
  opts.audit.enabled = true;
  auto res = run_object_trial(consensus_builder(), inputs, adv, opts);
  ASSERT_TRUE(res.completed());
  ASSERT_TRUE(res.audit.has_value());
  EXPECT_EQ(res.audit->status, audit_status::clean)
      << "note: " << res.audit->note;
  EXPECT_GT(res.audit->events_checked, 0u);
}

TEST(AuditTrial, TinyTraceCapMakesTheAuditInconclusive) {
  sim::random_oblivious adv;
  const std::vector<value_t> inputs = {0, 1};
  trial_options opts;
  opts.seed = 5;
  opts.audit.enabled = true;
  opts.audit.max_trace_events = 4;  // any real trial overflows this
  auto res = run_object_trial(consensus_builder(), inputs, adv, opts);
  ASSERT_TRUE(res.audit.has_value());
  EXPECT_EQ(res.audit->status, audit_status::inconclusive);
}

TEST(AuditTrial, RegularRegisterTrialAuditsLegalityOnly) {
  // Register faults void the §3 property guarantees, but every stale
  // read must still fit the regular-register window.
  sim::random_oblivious adv;
  const std::vector<value_t> inputs = {0, 1, 0};
  std::uint64_t stale_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_options opts;
    opts.seed = seed;
    opts.faults.regular_registers(/*stale_denominator=*/3);
    opts.audit.enabled = true;
    auto res = run_object_trial(consensus_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.audit.has_value());
    EXPECT_NE(res.audit->status, audit_status::violated)
        << "seed " << seed << ": " << res.audit->violations.size()
        << " violations";
    stale_total += res.audit->stale_reads_matched;
  }
  EXPECT_GT(stale_total, 0u);  // the fault layer did inject stale reads
}

TEST(AuditTrial, ExperimentEngineCountsAuditedTrials) {
  analysis::trial_grid cell;
  cell.label = "audited";
  cell.build = consensus_builder();
  cell.n = 3;
  cell.m = 2;
  cell.trials = 10;
  cell.base_seed = 21;
  cell.audit.mode = analysis::audit_mode::all;
  auto s = analysis::run_experiment(cell, {.threads = 1});
  EXPECT_EQ(s.audited, 10u);
  EXPECT_EQ(s.audit_clean, 10u);
  EXPECT_EQ(s.audit_violated, 0u);
  EXPECT_TRUE(s.audit_ok());
  EXPECT_EQ(s.audit_profile, "all");

  // The schema-v3 audit block serializes with the per-status counts.
  auto j = analysis::to_json(s);
  const std::string text = j.dump(0);
  EXPECT_NE(text.find("\"audit\""), std::string::npos);
  EXPECT_NE(text.find("\"clean\": 10"), std::string::npos);
}

TEST(AuditTrial, SampleModeAuditsEveryKthTrial) {
  analysis::trial_grid cell;
  cell.label = "sampled";
  cell.build = consensus_builder();
  cell.n = 2;
  cell.m = 2;
  cell.trials = 10;
  cell.audit.mode = analysis::audit_mode::sample;
  cell.audit.sample_every = 4;  // trials 0, 4, 8
  auto s = analysis::run_experiment(cell, {.threads = 1});
  EXPECT_EQ(s.audited, 3u);
  EXPECT_EQ(s.audit_profile, "sample(1/4)");
}

TEST(AuditTrial, RtTrialAuditsClean) {
  const std::vector<value_t> inputs = {0, 1};
  analysis::rt_trial_options opts;
  opts.seed = 9;
  opts.chaos = 4;
  opts.audit.enabled = true;
  auto res = run_rt_object_trial(
      [](address_space& mem, std::size_t) {
        return make_impatient_consensus<rt::rt_env>(mem,
                                                    make_binary_quorums());
      },
      inputs, opts);
  ASSERT_TRUE(res.completed());
  ASSERT_TRUE(res.audit.has_value());
  std::ostringstream os;
  for (const auto& v : res.audit->violations) os << v << "\n";
  EXPECT_EQ(res.audit->status, audit_status::clean)
      << "note: " << res.audit->note << "\n" << os.str();
  EXPECT_GT(res.audit->events_checked, 0u);
}

}  // namespace
}  // namespace modcon
