// Weak shared coins and the Theorem 6 coin conciliator.
#include "coin/voting_coin.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/conciliator/coin_conciliator.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// Adapter: run a bare coin as if it were a deciding object so the trial
// runner can drive it (output value = toss, decision bit 0).
class coin_as_object final : public deciding_object<sim_env> {
 public:
  explicit coin_as_object(std::unique_ptr<shared_coin<sim_env>> coin)
      : coin_(std::move(coin)) {}
  proc<decided> invoke(sim_env& env, value_t) override {
    value_t b = co_await coin_->toss(env);
    co_return decided{false, b};
  }
  std::string name() const override { return coin_->name(); }

 private:
  std::unique_ptr<shared_coin<sim_env>> coin_;
};

analysis::sim_object_builder coin_builder() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_as_object>(
        std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

analysis::sim_object_builder coin_conciliator_builder() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

TEST(VotingCoin, ReturnsBits) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(coin_builder(),
                                make_inputs(input_pattern::unanimous, 3, 2,
                                            seed),
                                adv, opts);
    ASSERT_TRUE(res.completed());
    for (const decided& d : res.outputs) EXPECT_LE(d.value, 1u);
  }
}

TEST(VotingCoin, BothOutcomesOccur) {
  int ones = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(coin_builder(),
                                make_inputs(input_pattern::unanimous, 2, 2,
                                            seed),
                                adv, opts);
    ASSERT_TRUE(res.completed());
    if (!res.agreement()) continue;
    ++total;
    ones += res.outputs[0].value;
  }
  // Both 0-agreement and 1-agreement happen with constant probability.
  EXPECT_GT(ones, total / 10);
  EXPECT_LT(ones, total - total / 10);
}

TEST(VotingCoin, AgreementIsFrequent) {
  std::size_t agreed = 0;
  constexpr std::size_t kTrials = 150;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(coin_builder(),
                                make_inputs(input_pattern::unanimous, 4, 2,
                                            seed),
                                adv, opts);
    ASSERT_TRUE(res.completed());
    agreed += res.agreement();
  }
  // With threshold 4n and period 2 the hidden-vote slack is small; most
  // executions agree.
  EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.5);
}

TEST(VotingCoin, SoloProcessTerminatesQuickly) {
  sim::round_robin adv;
  auto res = run_object_trial(coin_builder(), {0}, adv);
  ASSERT_TRUE(res.completed());
  // One process must still reach the threshold by itself: a ±1 random
  // walk to 4 needs a few dozen votes, each vote 1 write (+ collects).
  EXPECT_LT(res.total_ops, 10000u);
}

TEST(CoinConciliator, ValidityWithUnanimousInputsSkipsTheCoin) {
  // Theorem 6 proof: if all inputs are v nobody writes r_{1-v}, so all
  // processes return v without tossing — and in O(1) work.
  for (value_t v : {value_t{0}, value_t{1}}) {
    sim::random_oblivious adv;
    std::vector<value_t> inputs(5, v);
    auto res = run_object_trial(coin_conciliator_builder(), inputs, adv);
    ASSERT_TRUE(res.completed());
    for (const decided& d : res.outputs) {
      EXPECT_FALSE(d.decide);
      EXPECT_EQ(d.value, v);
    }
    EXPECT_LE(res.max_individual_ops, 2u);
  }
}

TEST(CoinConciliator, ValidityWithMixedInputs) {
  // With both inputs present any toss outcome is someone's input, so
  // validity always holds.
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res =
        run_object_trial(coin_conciliator_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs));
    for (const decided& d : res.outputs) EXPECT_FALSE(d.decide);
  }
}

TEST(CoinConciliator, ProbabilisticAgreementAtLeastCoinDelta) {
  std::size_t agreed = 0;
  constexpr std::size_t kTrials = 200;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res =
        run_object_trial(coin_conciliator_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    agreed += res.agreement();
  }
  EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.3);
}

TEST(CoinConciliator, BinaryOnly) {
  sim::round_robin adv;
  EXPECT_THROW(run_object_trial(coin_conciliator_builder(), {2}, adv),
               invariant_error);
}

TEST(CoinConciliator, AddsTwoOperationsOnTopOfTheCoin) {
  // A process that enters the coin pays coin cost + 2; one that skips it
  // pays exactly 2.
  sim::fixed_order adv(sim::fixed_order::mode::sequential);
  auto res = run_object_trial(coin_conciliator_builder(), {0, 1}, adv);
  ASSERT_TRUE(res.completed());
  // p0 ran alone: write + read = 2 ops, skipped the coin.
  EXPECT_EQ(res.outputs[0], (decided{false, 0}));
}

}  // namespace
}  // namespace modcon
