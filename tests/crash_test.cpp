// Wait-freedom under crash storms: every object's guarantees must hold
// for the survivors no matter how many processes crash, when they crash,
// or which scheduler runs — the model tolerates up to n-1 crash failures
// (§1).  Crash timings are drawn per seed so the sweep covers crashes
// before the first operation, mid-announce, mid-quorum-scan, and
// post-decision.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/runner.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"
#include "util/rng.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

enum class kind {
  conciliator_k,
  binary_ratifier_k,
  bollobas_ratifier_k,
  collect_ratifier_k,
  consensus_k,
  bounded_consensus_k,
  cil_k,
};

analysis::sim_object_builder builder_for(kind k) {
  switch (k) {
    case kind::conciliator_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<impatient_conciliator<sim_env>>(mem);
      };
    case kind::binary_ratifier_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<quorum_ratifier<sim_env>>(
            mem, make_binary_quorums());
      };
    case kind::bollobas_ratifier_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<quorum_ratifier<sim_env>>(
            mem, make_bollobas_quorums(6));
      };
    case kind::collect_ratifier_k:
      return [](address_space& mem, std::size_t n) {
        return std::make_unique<collect_ratifier<sim_env>>(mem, n);
      };
    case kind::consensus_k:
      return [](address_space& mem, std::size_t) {
        return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
      };
    case kind::bounded_consensus_k:
      return [](address_space& mem, std::size_t n) {
        return make_bounded_impatient_consensus<sim_env>(
            mem, make_binary_quorums(), n);
      };
    case kind::cil_k:
      return [](address_space& mem, std::size_t n) {
        return std::make_unique<cil_consensus<sim_env>>(mem, n);
      };
  }
  MODCON_CHECK(false);
  return {};
}

const char* name_of(kind k) {
  switch (k) {
    case kind::conciliator_k: return "conciliator";
    case kind::binary_ratifier_k: return "binratifier";
    case kind::bollobas_ratifier_k: return "bolratifier";
    case kind::collect_ratifier_k: return "colratifier";
    case kind::consensus_k: return "consensus";
    case kind::bounded_consensus_k: return "bounded";
    case kind::cil_k: return "cil";
  }
  return "?";
}

bool values_must_decide(kind k) {
  return k == kind::consensus_k || k == kind::bounded_consensus_k ||
         k == kind::cil_k;
}

std::uint64_t m_of(kind k) {
  return k == kind::bollobas_ratifier_k || k == kind::collect_ratifier_k
             ? 6
             : 2;
}

struct crash_case {
  kind object;
  std::size_t n;
  std::size_t crash_count;
};

class CrashStorm : public ::testing::TestWithParam<crash_case> {};

TEST_P(CrashStorm, SurvivorsKeepTheContract) {
  const auto c = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    rng pick(seed * 977 + 13);
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    // Crash `crash_count` distinct random pids at random small op counts.
    std::vector<process_id> victims;
    while (victims.size() < c.crash_count) {
      auto v = static_cast<process_id>(pick.below(c.n));
      if (std::find(victims.begin(), victims.end(), v) == victims.end())
        victims.push_back(v);
    }
    for (auto v : victims) opts.faults.crashes.push_back({v, pick.below(12)});

    auto inputs = make_inputs(input_pattern::random_m, c.n, m_of(c.object),
                              seed);
    auto res = run_object_trial(builder_for(c.object), inputs, adv, opts);

    // Survivors must have halted (wait-freedom): status is no_runnable
    // (some processes crashed) and the halted set = n - crash_count...
    // unless a victim finished before its crash point, which is fine too.
    ASSERT_NE(res.status, sim::run_status::step_limit)
        << name_of(c.object) << " seed " << seed;
    EXPECT_GE(res.outputs.size(), c.n - c.crash_count);
    EXPECT_TRUE(res.coherent()) << name_of(c.object) << " seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << name_of(c.object) << " seed " << seed;
    if (values_must_decide(c.object)) {
      for (const auto& d : res.outputs) EXPECT_TRUE(d.decide);
      EXPECT_TRUE(res.agreement()) << name_of(c.object) << " seed " << seed;
    }
  }
}

std::vector<crash_case> crash_cases() {
  std::vector<crash_case> cases;
  for (kind k : {kind::conciliator_k, kind::binary_ratifier_k,
                 kind::bollobas_ratifier_k, kind::collect_ratifier_k,
                 kind::consensus_k, kind::bounded_consensus_k, kind::cil_k}) {
    cases.push_back({k, 6, 1});
    cases.push_back({k, 6, 3});
    cases.push_back({k, 6, 5});  // n-1 crashes: lone survivor
    cases.push_back({k, 12, 6});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Storms, CrashStorm, ::testing::ValuesIn(crash_cases()),
    [](const auto& info) {
      return std::string(name_of(info.param.object)) + "_n" +
             std::to_string(info.param.n) + "_c" +
             std::to_string(info.param.crash_count);
    });

TEST(CrashStorm, UnanimousAcceptanceSurvivesCrashes) {
  // Ratifier acceptance among survivors when all inputs agree.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    opts.faults.crashes = {{1, seed % 4}, {4, (seed + 2) % 4}};
    std::vector<value_t> inputs(6, 3);
    auto build = [](address_space& mem, std::size_t) {
      return std::make_unique<quorum_ratifier<sim_env>>(
          mem, make_bollobas_quorums(6));
    };
    auto res = run_object_trial(build, inputs, adv, opts);
    for (const auto& d : res.outputs) EXPECT_EQ(d, (decided{true, 3}));
  }
}

}  // namespace
}  // namespace modcon
