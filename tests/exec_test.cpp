// The execution-model layer: proc<T> lifecycle, nesting, exceptions,
// result plumbing, and the decided-word encoding.
#include "exec/proc.h"

#include <gtest/gtest.h>

#include "core/types.h"
#include "util/assertx.h"

namespace modcon {
namespace {

proc<word> returns_value(word v) { co_return v; }

proc<word> adds(word a, word b) {
  word x = co_await returns_value(a);
  word y = co_await returns_value(b);
  co_return x + y;
}

proc<word> deep(int depth) {
  if (depth == 0) co_return 1;
  word below = co_await deep(depth - 1);
  co_return below + 1;
}

proc<word> throws_deep(int depth) {
  if (depth == 0) MODCON_CHECK_MSG(false, "boom at the bottom");
  word below = co_await throws_deep(depth - 1);
  co_return below;
}

proc<word> catches_child() {
  try {
    co_await throws_deep(3);
  } catch (const invariant_error&) {
    co_return 42;  // child exceptions are catchable mid-coroutine
  }
  co_return 0;
}

TEST(Proc, RunInlineReturnsValue) {
  EXPECT_EQ(run_inline(returns_value(7)), 7u);
}

TEST(Proc, NestedAwaitsCompose) {
  EXPECT_EQ(run_inline(adds(3, 4)), 7u);
}

TEST(Proc, DeepRecursionOfCoroutines) {
  EXPECT_EQ(run_inline(deep(200)), 201u);
}

TEST(Proc, ChildExceptionPropagatesThroughChain) {
  EXPECT_THROW(run_inline(throws_deep(5)), invariant_error);
}

TEST(Proc, ChildExceptionIsCatchableInParent) {
  EXPECT_EQ(run_inline(catches_child()), 42u);
}

TEST(Proc, MoveTransfersOwnership) {
  proc<word> a = returns_value(9);
  proc<word> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.start();
  EXPECT_TRUE(b.done());
  EXPECT_EQ(b.take_result(), 9u);
}

TEST(Proc, MoveAssignDestroysPrevious) {
  proc<word> a = returns_value(1);
  a = returns_value(2);  // first frame must be destroyed, no leak (ASAN)
  EXPECT_EQ(run_inline(std::move(a)), 2u);
}

TEST(Proc, TakeResultBeforeCompletionThrows) {
  proc<word> p = returns_value(3);
  EXPECT_THROW(p.take_result(), invariant_error);
  p.start();
  EXPECT_EQ(p.take_result(), 3u);
}

TEST(Proc, FailedFlagSet) {
  proc<word> p = throws_deep(1);
  p.start();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.take_result(), invariant_error);
}

TEST(Proc, DestroySuspendedFrameIsClean) {
  // A proc destroyed without ever being started must free its frame.
  { proc<word> p = deep(50); }
  SUCCEED();
}

TEST(DecidedEncoding, RoundTrips) {
  for (decided d : {decided{false, 0}, decided{true, 0},
                    decided{false, 123456}, decided{true, kDecideBit - 1}}) {
    EXPECT_EQ(decode_decided(encode_decided(d)), d);
  }
}

TEST(DecidedEncoding, RejectsOversizedValues) {
  EXPECT_THROW(encode_decided(decided{false, kDecideBit}), invariant_error);
  EXPECT_THROW(encode_decided(decided{true, kBot}), invariant_error);
}

}  // namespace
}  // namespace modcon
