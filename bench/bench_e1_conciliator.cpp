// E1 — Theorem 7: the impatient first-mover conciliator.
//
// Paper claims, for any location-oblivious adversary and any number of
// input values:
//   * individual work <= 2 lg n + 4 (deterministic worst case),
//   * expected total work <= 6n,
//   * agreement probability >= (1 - e^{-1/4})/4 ≈ 0.0553.
//
// Reproduced: n-sweep under the neutral random scheduler plus the two
// in-model attackers; we report measured individual-work maxima against
// the 2 lg n + 4 cap, mean total work against 6n, and the Wilson 95%
// lower bound of the agreement frequency against δ.
#include <memory>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

void work_table() {
  table t({"n", "trials", "indiv_max", "bound_2lgn+4", "total_mean",
           "total/n", "bound_6n"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                        2048u, 4096u}) {
    std::size_t trials = trials_for(n, 120'000);
    auto agg = run_trials(impatient(), analysis::input_pattern::half_half,
                          n, 2, [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(agg.individual_ops.max(), 0)
        .cell(static_cast<std::uint64_t>(2 * lg_ceil(n) + 4))
        .cell(agg.total_ops.mean(), 1)
        .cell(agg.total_ops.mean() / static_cast<double>(n), 2)
        .cell(static_cast<std::uint64_t>(6 * n));
  }
  t.emit("E1a: conciliator work vs Theorem 7 bounds (random scheduler)",
         "e1_work");
}

void agreement_table() {
  constexpr double kDelta = 0.0553;
  table t({"n", "adversary", "trials", "agree", "wilson_lo", "delta",
           "holds"});
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    struct row_case {
      const char* name;
      adversary_factory make;
    };
    const row_case cases[] = {
        {"random", [] { return std::make_unique<sim::random_oblivious>(); }},
        {"round-robin", [] { return std::make_unique<sim::round_robin>(); }},
        {"greedy-overwrite",
         [] { return std::make_unique<sim::greedy_overwrite>(0); }},
        {"stockpiler", [] { return std::make_unique<sim::stockpiler>(0); }},
    };
    for (const auto& c : cases) {
      std::size_t trials = trials_for(n, 60'000);
      auto agg = run_trials(impatient(), analysis::input_pattern::half_half,
                            n, 2, c.make, trials);
      auto ci = agg.agreement_ci();
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(c.name)
          .cell(static_cast<std::uint64_t>(trials))
          .cell(ci.estimate, 3)
          .cell(ci.lo, 3)
          .cell(kDelta, 4)
          .cell(ci.lo >= kDelta ? "yes" : "NO");
    }
  }
  t.emit("E1b: conciliator agreement probability vs delta = (1-e^-1/4)/4",
         "e1_agreement");
}

void only_one_write_table() {
  // The engine of the Theorem 7 proof: with probability at least
  // (1 - e^{-1/4}) · (1/4), exactly ONE write lands in the register.
  // Measure the write-count distribution directly.
  table t({"n", "trials", "P[writes==1]", "bound", "mean_writes",
           "agree_when_1w"});
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    std::size_t trials = trials_for(n, 60'000);
    std::size_t one_write = 0, one_write_agree = 0;
    double writes_sum = 0;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      sim::random_oblivious adv;
      analysis::trial_options opts;
      opts.seed = seed;
      std::uint64_t writes = 0;
      opts.inspect = [&writes](const sim::sim_world& w) {
        writes = w.writes_applied(0);
      };
      auto res = analysis::run_object_trial(
          impatient(),
          analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                seed),
          adv, opts);
      if (!res.completed()) continue;
      writes_sum += static_cast<double>(writes);
      if (writes == 1) {
        ++one_write;
        one_write_agree += res.agreement();
      }
    }
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(static_cast<double>(one_write) / trials, 3)
        .cell(0.0553, 4)
        .cell(writes_sum / trials, 2)
        .cell(one_write ? static_cast<double>(one_write_agree) / one_write
                        : 0.0,
              3);
  }
  t.emit("E1d: P[exactly one successful write] — the Theorem 7 engine",
         "e1_one_write");
}

void multivalue_table() {
  // §5.2: the conciliator works "for arbitrarily many values" — the cost
  // does not depend on m.
  table t({"m", "n", "indiv_max", "total_mean", "agree"});
  const std::size_t n = 64;
  for (std::uint64_t m : {2ull, 8ull, 64ull, 1024ull, 1ull << 20}) {
    auto agg = run_trials(impatient(), analysis::input_pattern::random_m, n,
                          m, [] { return std::make_unique<sim::random_oblivious>(); },
                          600);
    t.row()
        .cell(m)
        .cell(static_cast<std::uint64_t>(n))
        .cell(agg.individual_ops.max(), 0)
        .cell(agg.total_ops.mean(), 1)
        .cell(agg.agreement_rate(), 3);
  }
  t.emit("E1c: conciliator cost is independent of the value-set size m",
         "e1_multivalue");
}

void detection_table() {
  // Footnote to Theorem 7: if a process can detect that its
  // probabilistic write succeeded, it can return immediately, shaving a
  // constant off the individual work.  Solo (sequential) runs make the
  // saving visible.
  table t({"n", "plain_solo_ops", "detecting_solo_ops", "saved"});
  for (std::size_t n : {8u, 64u, 512u}) {
    running_stats plain, detecting;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      analysis::trial_options opts;
      opts.seed = seed;
      auto inputs =
          analysis::make_inputs(analysis::input_pattern::unanimous, n, 2, 0);
      {
        sim::fixed_order adv(sim::fixed_order::mode::sequential);
        auto res = analysis::run_object_trial(impatient(), inputs, adv, opts);
        plain.add(static_cast<double>(res.max_individual_ops));
      }
      {
        sim::fixed_order adv(sim::fixed_order::mode::sequential);
        auto build = [](address_space& mem, std::size_t) {
          return std::make_unique<impatient_conciliator<sim_env>>(
              mem, impatience_schedule{}, /*detect_success=*/true);
        };
        auto res = analysis::run_object_trial(build, inputs, adv, opts);
        detecting.add(static_cast<double>(res.max_individual_ops));
      }
    }
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(plain.mean(), 2)
        .cell(detecting.mean(), 2)
        .cell(plain.mean() - detecting.mean(), 2);
  }
  t.emit("E1e: success detection saves a constant (Theorem 7 footnote)",
         "e1_detection");
}

}  // namespace

int main() {
  print_header("E1: ImpatientFirstMoverConciliator (Theorem 7)",
               "claims: indiv <= 2 lg n + 4; E[total] <= 6n; "
               "agreement >= 0.0553 vs any location-oblivious adversary");
  work_table();
  agreement_table();
  only_one_write_table();
  multivalue_table();
  detection_table();
  return 0;
}
