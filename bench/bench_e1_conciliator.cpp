// E1 — Theorem 7: the impatient first-mover conciliator.
//
// Paper claims, for any location-oblivious adversary and any number of
// input values:
//   * individual work <= 2 lg n + 4 (deterministic worst case),
//   * expected total work <= 6n,
//   * agreement probability >= (1 - e^{-1/4})/4 ≈ 0.0553.
//
// Reproduced: n-sweep under the neutral random scheduler plus the two
// in-model attackers; we report measured individual-work maxima against
// the 2 lg n + 4 cap, mean total work against 6n, and the Wilson 95%
// lower bound of the agreement frequency against δ.
#include <memory>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

void work_table(bench_harness& h) {
  const std::vector<std::size_t> ns = {2,   4,    8,    16,   32,   64,
                                       128, 256,  512,  1024, 2048, 4096};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e1_work/n=" + std::to_string(n),
        .build = impatient(),
        .n = n,
        .trials = h.trials(trials_for(n, 120'000)),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "indiv_max", "bound_2lgn+4", "total_mean",
           "total/n", "bound_6n"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::size_t n = ns[i];
    const auto& s = summaries[i];
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.max_individual_ops.max, 0)
        .cell(static_cast<std::uint64_t>(2 * lg_ceil(n) + 4))
        .cell(s.total_ops.mean, 1)
        .cell(s.total_ops.mean / static_cast<double>(n), 2)
        .cell(static_cast<std::uint64_t>(6 * n));
  }
  h.emit(t, "E1a: conciliator work vs Theorem 7 bounds (random scheduler)",
         "e1_work");
}

void agreement_table(bench_harness& h) {
  constexpr double kDelta = 0.0553;
  struct row_case {
    const char* name;
    adversary_factory make;
  };
  const row_case cases[] = {
      {"random", random_scheduler()},
      {"round-robin", [] { return std::make_unique<sim::round_robin>(); }},
      {"greedy-overwrite",
       [] { return std::make_unique<sim::greedy_overwrite>(0); }},
      {"stockpiler", [] { return std::make_unique<sim::stockpiler>(0); }},
  };
  std::vector<trial_grid> grid;
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    for (const auto& c : cases) {
      grid.push_back({
          .label = std::string("e1_agreement/") + c.name +
                   "/n=" + std::to_string(n),
          .build = impatient(),
          .make_adversary = c.make,
          .n = n,
          .trials = h.trials(trials_for(n, 60'000)),
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "adversary", "trials", "agree", "wilson_lo", "delta",
           "holds"});
  std::size_t i = 0;
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    for (const auto& c : cases) {
      const auto& s = summaries[i++];
      auto ci = s.agreement_ci();
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(c.name)
          .cell(static_cast<std::uint64_t>(s.trials))
          .cell(ci.estimate, 3)
          .cell(ci.lo, 3)
          .cell(kDelta, 4)
          .cell(ci.lo >= kDelta ? "yes" : "NO");
    }
  }
  h.emit(t, "E1b: conciliator agreement probability vs delta = (1-e^-1/4)/4",
         "e1_agreement");
}

void only_one_write_table(bench_harness& h) {
  // The engine of the Theorem 7 proof: with probability at least
  // (1 - e^{-1/4}) · (1/4), exactly ONE write lands in the register.
  // Measure the write-count distribution via a probe and compute the
  // joint statistics from the retained per-trial records.
  const std::vector<std::size_t> ns = {8, 32, 128, 512};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e1_one_write/n=" + std::to_string(n),
        .build = impatient(),
        .n = n,
        .trials = h.trials(trials_for(n, 60'000)),
        .probes = {{"writes", [](const sim::sim_world& w,
                                 const deciding_object<sim_env>&) {
                      return static_cast<double>(w.writes_applied(0));
                    }}},
        .keep_records = true,
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "P[writes==1]", "bound", "mean_writes",
           "agree_when_1w"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto& s = summaries[i];
    std::size_t one_write = 0, one_write_agree = 0;
    for (const auto& rec : s.records) {
      if (!rec.result.completed()) continue;
      if (rec.probes[0] == 1.0) {
        ++one_write;
        one_write_agree += rec.result.agreement();
      }
    }
    t.row()
        .cell(static_cast<std::uint64_t>(ns[i]))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(static_cast<double>(one_write) / s.trials, 3)
        .cell(0.0553, 4)
        .cell(s.find_probe("writes")->mean, 2)
        .cell(one_write ? static_cast<double>(one_write_agree) / one_write
                        : 0.0,
              3);
  }
  h.emit(t, "E1d: P[exactly one successful write] — the Theorem 7 engine",
         "e1_one_write");
}

void multivalue_table(bench_harness& h) {
  // §5.2: the conciliator works "for arbitrarily many values" — the cost
  // does not depend on m.
  const std::vector<std::uint64_t> ms = {2, 8, 64, 1024, 1ull << 20};
  const std::size_t n = 64;
  std::vector<trial_grid> grid;
  for (std::uint64_t m : ms) {
    grid.push_back({
        .label = "e1_multivalue/m=" + std::to_string(m),
        .build = impatient(),
        .pattern = analysis::input_pattern::random_m,
        .n = n,
        .m = m,
        .trials = h.trials(600),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"m", "n", "indiv_max", "total_mean", "agree"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& s = summaries[i];
    t.row()
        .cell(ms[i])
        .cell(static_cast<std::uint64_t>(n))
        .cell(s.max_individual_ops.max, 0)
        .cell(s.total_ops.mean, 1)
        .cell(s.agreement_rate(), 3);
  }
  h.emit(t, "E1c: conciliator cost is independent of the value-set size m",
         "e1_multivalue");
}

void detection_table(bench_harness& h) {
  // Footnote to Theorem 7: if a process can detect that its
  // probabilistic write succeeded, it can return immediately, shaving a
  // constant off the individual work.  Solo (sequential) runs make the
  // saving visible.
  auto sequential = [] {
    return std::make_unique<sim::fixed_order>(
        sim::fixed_order::mode::sequential);
  };
  auto detecting = [](address_space& mem, std::size_t)
      -> std::unique_ptr<deciding_object<sim_env>> {
    return std::make_unique<impatient_conciliator<sim_env>>(
        mem, impatience_schedule{}, /*detect_success=*/true);
  };
  const std::vector<std::size_t> ns = {8, 64, 512};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    trial_grid plain{
        .label = "e1_detection/plain/n=" + std::to_string(n),
        .build = impatient(),
        .make_adversary = sequential,
        .pattern = analysis::input_pattern::unanimous,
        .n = n,
        .trials = h.trials(300),
    };
    trial_grid detect = plain;
    detect.label = "e1_detection/detecting/n=" + std::to_string(n);
    detect.build = detecting;
    grid.push_back(std::move(plain));
    grid.push_back(std::move(detect));
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "plain_solo_ops", "detecting_solo_ops", "saved"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    double plain = summaries[2 * i].max_individual_ops.mean;
    double detect = summaries[2 * i + 1].max_individual_ops.mean;
    t.row()
        .cell(static_cast<std::uint64_t>(ns[i]))
        .cell(plain, 2)
        .cell(detect, 2)
        .cell(plain - detect, 2);
  }
  h.emit(t, "E1e: success detection saves a constant (Theorem 7 footnote)",
         "e1_detection");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e1_conciliator", argc, argv);
  print_header("E1: ImpatientFirstMoverConciliator (Theorem 7)",
               "claims: indiv <= 2 lg n + 4; E[total] <= 6n; "
               "agreement >= 0.0553 vs any location-oblivious adversary");
  work_table(h);
  agreement_table(h);
  only_one_write_table(h);
  multivalue_table(h);
  detection_table(h);
  return h.finish();
}
