// E18 — survivability: register semantics × crash-recovery × stack.
//
// Paper context: the decomposition's guarantees are proved for
// crash-stop processes over atomic registers.  Two robustness axes relax
// that model.  (1) Register semantics: Lamport's hierarchy — atomic,
// regular (a read concurrent with writes may return the last complete
// write or any overlapping one; Hadzilacos–Hu–Toueg 2020 build consensus
// from exactly this), safe (a read overlapping any write may return an
// arbitrary domain value).  (2) Crash-recovery (Delporte-Gallet et al.
// 2022): a process loses its volatile registers and all local state, then
// re-runs its protocol from the top; the stack's persistent partition —
// ratifier boards, the CIL fallback, the decision pin — is what drags it
// back to the decided value.
//
// The grid sweeps every registry stack, built with with_recovery()
// (persistent/volatile partitions + decision pin), across semantics
// {atomic, regular, safe} × recovery rate {none, light, heavy}.  Expected
// shape: under atomic semantics every cell keeps agreement at probability
// 1.0 no matter the recovery rate (the audited acceptance claim — a
// recovery wipe only ever reopens a conciliator race); regular semantics
// keep validity/coherence but may pay extra stages; safe semantics can
// break agreement outright.  The table reports agreement probability,
// expected recoveries-to-decision, and mean total ops; only deterministic
// columns are printed, so the text stream is byte-identical across
// --threads (steps/sec lives in the JSON "perf" block, which the
// determinism contract excludes).
#include <string>

#include "common.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using analysis::fault_plan;
using sim::register_semantics;
using sim::sim_env;

struct semantics_mode {
  std::string name;
  register_semantics semantics;
};

std::vector<semantics_mode> semantics_modes() {
  return {{"atomic", register_semantics::atomic},
          {"regular", register_semantics::regular},
          {"safe", register_semantics::safe}};
}

struct recovery_mode {
  std::string name;
  // Seed-derived per-trial recovery schedule; nullptr = none.
  std::function<void(fault_plan&, std::uint64_t seed, std::size_t n)> inject;
};

std::vector<recovery_mode> recovery_modes() {
  std::vector<recovery_mode> out;
  out.push_back({"none", nullptr});
  out.push_back({"light", [](fault_plan& p, std::uint64_t seed,
                             std::size_t n) {
                   p.recover(static_cast<process_id>(seed % n),
                             2 + seed % 8);
                 }});
  out.push_back({"heavy", [](fault_plan& p, std::uint64_t seed,
                             std::size_t n) {
                   for (process_id v = 0; v < 3; ++v)
                     p.recover(static_cast<process_id>((seed + 2 * v) % n),
                               1 + (seed >> (3 * v)) % 10);
                 }});
  return out;
}

void survivability_grid(bench_harness& h) {
  const std::size_t n = 6;
  auto sems = semantics_modes();
  auto recs = recovery_modes();

  std::vector<trial_grid> grid;
  for (const auto& [stack_name, base_spec] : stack_registry())
    for (const auto& sem : sems)
      for (const auto& rec : recs) {
        const stack_spec spec = base_spec.with_recovery();
        trial_grid cell{
            .label = "e18_survive/" + stack_name + "/" + sem.name + "/" +
                     rec.name,
            .build = stack_builder<sim_env>(spec),
            .n = n,
            .trials = h.trials(120),
            .limits = {.max_steps = 400'000},
        };
        const register_semantics semantics = sem.semantics;
        if (rec.inject) {
          auto inject = rec.inject;
          cell.faults_for = [inject, semantics, n](std::uint64_t,
                                                   std::uint64_t seed) {
            fault_plan p;
            p.with_semantics(semantics);
            inject(p, seed, n);
            return p;
          };
        } else {
          cell.faults = fault_plan{}.with_semantics(semantics);
        }
        grid.push_back(std::move(cell));
      }
  auto summaries = h.run_grid(std::move(grid));

  table t({"stack", "semantics", "recovery", "trials", "done", "agree_p",
           "valid", "recoveries", "rec_to_decide_mean", "overlap_reads",
           "wipes", "ops_mean"});
  std::size_t i = 0;
  for (const auto& [stack_name, base_spec] : stack_registry()) {
    (void)base_spec;
    for (const auto& sem : sems)
      for (const auto& rec : recs) {
        const auto& sum = summaries[i++];
        t.row()
            .cell(stack_name)
            .cell(sem.name)
            .cell(rec.name)
            .cell(static_cast<std::uint64_t>(sum.trials))
            .cell(static_cast<std::uint64_t>(sum.completed))
            .cell(sum.agreement_rate())
            .cell(static_cast<std::uint64_t>(sum.valid))
            .cell(sum.recovery.recoveries)
            .cell(sum.recovery.recoveries_to_decision.mean)
            .cell(sum.recovery.overlap_reads)
            .cell(sum.recovery.volatile_wipes)
            .cell(sum.total_ops.mean);
      }
  }
  h.emit(t,
         "E18: survivability — agreement probability and recoveries-to-"
         "decision per (stack x semantics x recovery rate), sim backend "
         "(n=6; atomic rows stay at agreement 1.0 under any recovery rate)",
         "e18_survive");
}

// rt spot-check: crash-recovery on real threads (volatile arena partition
// wiped in the recovery catch arm) and the read-racing approximation of
// regular semantics.  Deterministic columns only.
void rt_scenarios(bench_harness& h) {
  struct scenario {
    std::string name;
    fault_plan faults;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"none", {}});
  // rt fault points fire at op entry, and a late-starting thread can find
  // the decision pin already set and halt after a single op — thresholds
  // of 0 (crash on the very first op) are the only ones that land for
  // every pid regardless of thread-start order.
  scenarios.push_back({"recover(1@0)", fault_plan{}.recover(1, 0)});
  scenarios.push_back({"recover(0@1)+recover(2@0)",
                       fault_plan{}.recover(0, 1).recover(2, 0)});
  scenarios.push_back(
      {"regular-race", fault_plan{}.with_semantics(
                           sim::register_semantics::regular)});

  const std::size_t n = 4;
  const std::size_t trials = h.trials(6);
  const stack_spec spec = stack_for("impatient").with_recovery();
  auto rt_build = stack_builder<rt::rt_env>(spec);

  table t({"scenario", "trials", "halted", "recovered", "agree", "valid"});
  for (const auto& sc : scenarios) {
    std::uint64_t halted = 0, recovered = 0, agree = 0, valid = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t seed = analysis::derive_trial_seed(18, trial);
      auto inputs = analysis::make_inputs(analysis::input_pattern::half_half,
                                          n, 2, seed);
      analysis::rt_trial_options opts;
      opts.seed = seed;
      opts.faults = sc.faults;
      auto res = analysis::run_rt_object_trial(rt_build, inputs, opts);
      halted += res.halted_pids.size();
      recovered += res.recovered_pids.size();
      agree += res.agreement();
      valid += res.valid(inputs);
    }
    t.row()
        .cell(sc.name)
        .cell(static_cast<std::uint64_t>(trials))
        .cell(halted)
        .cell(recovered)
        .cell(agree)
        .cell(valid);
  }
  h.emit(t,
         "E18b: rt-backend crash-recovery (volatile arena wipe) and the "
         "read-racing regular approximation (n=4)",
         "e18_rt_recovery");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e18_survivability", argc, argv);
  print_header(
      "E18: survivability — register semantics (atomic/regular/safe) x "
      "crash-recovery (persistent/volatile partitions) x stack",
      "claims: atomic + recovery keeps agreement probability 1.0 for every "
      "registry stack (recovery wipes only reopen conciliator races); "
      "regular semantics cost probability, not safety; safe semantics can "
      "break agreement");
  survivability_grid(h);
  rt_scenarios(h);
  return h.finish();
}
