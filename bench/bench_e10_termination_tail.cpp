// E10 — the Attiya–Censor termination tail (§1).
//
// Paper context: any f-failure-tolerant randomized binary consensus must
// still be running after k(n-f) total steps with probability at least
// 1/c^k, and the paper's protocol makes this bound asymptotically tight
// for the probabilistic-write model (its total work is O(n), i.e. the
// survival probability decays geometrically in k with constant base).
//
// Reproduced: the survival function of total work — P[total steps >= k·n]
// for k = 1..12 — for the paper's stack.  The shape check: log2 of the
// survival ratio between consecutive k stabilizes (geometric decay), and
// the tail is non-zero for small k (a lower-bound artifact no protocol
// can avoid).
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

}  // namespace

void failure_sweep() {
  // The lower bound is stated for f-failure-tolerant protocols and
  // k(n-f) total steps: crash f processes early and measure survival
  // against multiples of the survivor count.
  table t({"n", "f", "trials", "k", "P[total>=k*(n-f)]"});
  const std::size_t n = 32;
  for (std::size_t f : {0u, 8u, 16u, 24u}) {
    const std::size_t trials = 800;
    std::vector<std::uint64_t> totals;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      sim::random_oblivious adv;
      analysis::trial_options opts;
      opts.seed = seed;
      for (process_id p = 0; p < f; ++p)
        opts.crashes.push_back({p, (seed + p) % 6});
      auto res = analysis::run_object_trial(
          stack(),
          analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                seed),
          adv, opts);
      if (res.status != sim::run_status::step_limit)
        totals.push_back(res.total_ops);
    }
    for (std::size_t k : {4u, 8u, 12u, 16u}) {
      std::size_t surviving = 0;
      for (auto tot : totals) surviving += tot >= k * (n - f);
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(f))
          .cell(static_cast<std::uint64_t>(totals.size()))
          .cell(static_cast<std::uint64_t>(k))
          .cell(totals.empty()
                    ? 0.0
                    : static_cast<double>(surviving) / totals.size(),
                4);
    }
  }
  t.emit("E10b: survival vs k(n-f) under f early crashes", "e10_failures");
}

int main() {
  print_header("E10: termination-tail shape (Attiya–Censor lower bound)",
               "claims: P[still running after k·n total steps] decays "
               "geometrically in k — the lower bound is tight here");
  table t({"n", "trials", "k", "P[total>=k*n]", "decay_vs_prev"});
  for (std::size_t n : {16u, 64u, 256u}) {
    const std::size_t trials = trials_for(n, 120'000);
    std::vector<std::uint64_t> totals;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      sim::random_oblivious adv;
      analysis::trial_options opts;
      opts.seed = seed;
      auto res = analysis::run_object_trial(
          stack(),
          analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                seed),
          adv, opts);
      if (res.completed()) totals.push_back(res.total_ops);
    }
    double prev = 1.0;
    for (std::size_t k = 1; k <= 12; ++k) {
      std::size_t surviving = 0;
      for (auto tot : totals) surviving += tot >= k * n;
      double p = totals.empty()
                     ? 0.0
                     : static_cast<double>(surviving) / totals.size();
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(totals.size()))
          .cell(static_cast<std::uint64_t>(k))
          .cell(p, 4)
          .cell(prev > 0 && p > 0 ? p / prev : 0.0, 3);
      prev = p;
    }
  }
  t.emit("E10a: survival function of total work (geometric tail)",
         "e10_tail");
  failure_sweep();
  return 0;
}
