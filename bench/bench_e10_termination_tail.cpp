// E10 — the Attiya–Censor termination tail (§1).
//
// Paper context: any f-failure-tolerant randomized binary consensus must
// still be running after k(n-f) total steps with probability at least
// 1/c^k, and the paper's protocol makes this bound asymptotically tight
// for the probabilistic-write model (its total work is O(n), i.e. the
// survival probability decays geometrically in k with constant base).
//
// Reproduced: the survival function of total work — P[total steps >= k·n]
// for k = 1..12 — for the paper's stack.  The shape check: log2 of the
// survival ratio between consecutive k stabilizes (geometric decay), and
// the tail is non-zero for small k (a lower-bound artifact no protocol
// can avoid).  Survival functions are computed from per-trial records
// (keep_records); crashed processes are identified via
// trial_result::crashed_pids rather than inferred from halted_pids.
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

void tail_table(bench_harness& h) {
  const std::vector<std::size_t> ns = {16, 64, 256};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e10_tail/n=" + std::to_string(n),
        .build = stack(),
        .n = n,
        .trials = h.trials(trials_for(n, 120'000)),
        .keep_records = true,
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "k", "P[total>=k*n]", "decay_vs_prev"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = ns[i];
    std::vector<std::uint64_t> totals;
    for (const auto& rec : summaries[i].records)
      if (rec.result.completed()) totals.push_back(rec.result.total_ops);
    double prev = 1.0;
    for (std::size_t k = 1; k <= 12; ++k) {
      std::size_t surviving = 0;
      for (auto tot : totals) surviving += tot >= k * n;
      double p = totals.empty()
                     ? 0.0
                     : static_cast<double>(surviving) / totals.size();
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(totals.size()))
          .cell(static_cast<std::uint64_t>(k))
          .cell(p, 4)
          .cell(prev > 0 && p > 0 ? p / prev : 0.0, 3);
      prev = p;
    }
  }
  h.emit(t, "E10a: survival function of total work (geometric tail)",
         "e10_tail");
}

void failure_sweep(bench_harness& h) {
  // The lower bound is stated for f-failure-tolerant protocols and
  // k(n-f) total steps: crash f processes early and measure survival
  // against multiples of the survivor count.  Each trial gets its own
  // seed-dependent crash schedule via faults_for.
  const std::size_t n = 32;
  const std::vector<std::size_t> fs = {0, 8, 16, 24};
  std::vector<trial_grid> grid;
  for (std::size_t f : fs) {
    grid.push_back({
        .label = "e10_failures/f=" + std::to_string(f),
        .build = stack(),
        .n = n,
        .trials = h.trials(800),
        .faults_for =
            [f](std::size_t, std::uint64_t seed) {
              analysis::fault_plan plan;
              for (process_id p = 0; p < f; ++p)
                plan.crash(p, (seed + p) % 6);
              return plan;
            },
        .keep_records = true,
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "f", "crashed_mean", "trials", "k", "P[total>=k*(n-f)]"});
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const std::size_t f = fs[i];
    const auto& s = summaries[i];
    std::vector<std::uint64_t> totals;
    for (const auto& rec : s.records)
      if (rec.result.status != sim::run_status::step_limit)
        totals.push_back(rec.result.total_ops);
    double crashed_mean =
        s.trials == 0 ? 0.0
                      : static_cast<double>(s.crashed_processes) / s.trials;
    for (std::size_t k : {4u, 8u, 12u, 16u}) {
      std::size_t surviving = 0;
      for (auto tot : totals) surviving += tot >= k * (n - f);
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(f))
          .cell(crashed_mean, 1)
          .cell(static_cast<std::uint64_t>(totals.size()))
          .cell(static_cast<std::uint64_t>(k))
          .cell(totals.empty()
                    ? 0.0
                    : static_cast<double>(surviving) / totals.size(),
                4);
    }
  }
  h.emit(t, "E10b: survival vs k(n-f) under f early crashes", "e10_failures");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e10_termination_tail", argc, argv);
  print_header("E10: termination-tail shape (Attiya–Censor lower bound)",
               "claims: P[still running after k·n total steps] decays "
               "geometrically in k — the lower bound is tight here");
  tail_table(h);
  failure_sweep(h);
  return h.finish();
}
