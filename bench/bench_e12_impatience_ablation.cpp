// E12 — ablation: why does the conciliator double its probability?
//
// Theorem 7's schedule multiplies the write probability by 2 after every
// miss.  This bench sweeps the growth factor g (min(g^k/n, 1)):
//   g = 1    the CIL-style fixed-probability baseline — Θ(n) individual
//            work, no escalation;
//   g = 2    the paper's choice — 2 lg n + O(1) individual work with the
//            proven constant agreement bound;
//   g > 2    faster escalation — fewer operations, but the Σp_i mass in
//            the overwrite window grows, eroding the agreement margin;
//   1 < g < 2  slower escalation — log-base-g individual work (more
//            operations), slightly gentler overwrite mass.
//
// Reported per (g, n): worst-case individual work, expected total work,
// agreement frequency under the neutral scheduler AND under the
// strongest in-model attacker (the stockpiler).  The shape to see:
// individual work ~ 2 log_g n + O(1) for g > 1, and agreement under
// attack that degrades as g grows — doubling sits at the knee.
#include <memory>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder with_growth(impatience_schedule g) {
  return [g](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem, g);
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e12_impatience_ablation", argc, argv);
  print_header("E12: impatience-growth ablation on the Theorem 7 conciliator",
               "claims implied by the paper's choice g = 2: individual work "
               "~ 2 log_g n, agreement under attack degrades with g");
  struct growth {
    const char* label;
    impatience_schedule schedule;
  };
  const growth growths[] = {
      {"1 (fixed)", {1, 1}}, {"1.5", {3, 2}}, {"2 (paper)", {2, 1}},
      {"4", {4, 1}},         {"8", {8, 1}},
  };
  const std::vector<std::size_t> ns = {8, 32, 128};

  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    for (const auto& g : growths) {
      const std::size_t trials = h.trials(trials_for(n, 40'000));
      grid.push_back({
          .label = std::string("e12_ablation/neutral/g=") + g.label +
                   "/n=" + std::to_string(n),
          .build = with_growth(g.schedule),
          .n = n,
          .trials = trials,
      });
      grid.push_back({
          .label = std::string("e12_ablation/stockpiler/g=") + g.label +
                   "/n=" + std::to_string(n),
          .build = with_growth(g.schedule),
          .make_adversary =
              [] { return std::make_unique<sim::stockpiler>(0); },
          .n = n,
          .trials = trials,
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"g", "n", "trials", "indiv_max", "total_mean", "agree_random",
           "agree_stockpiler"});
  std::size_t i = 0;
  for (std::size_t n : ns) {
    for (const auto& g : growths) {
      const auto& neutral = summaries[i++];
      const auto& attacked = summaries[i++];
      t.row()
          .cell(g.label)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(neutral.trials))
          .cell(neutral.max_individual_ops.max, 0)
          .cell(neutral.total_ops.mean, 1)
          .cell(neutral.agreement_rate(), 3)
          .cell(attacked.agreement_rate(), 3);
    }
  }
  h.emit(t, "E12: growth-factor sweep (work vs agreement trade-off)",
         "e12_ablation");
  return h.finish();
}
