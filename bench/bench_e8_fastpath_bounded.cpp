// E8 — §4.1: the fast path and Theorem 5's bounded construction.
//
// Paper claims:
//   * the prefix R₋₁; R₀ lets executions where the fastest processes
//     agree decide without ever paying for a conciliator;
//   * the bounded object B = (R₋₁; R₀; (C;R)^k; K) is consensus with
//     expected cost O((1/δ)(T(R)+T(C)) + (1-δ)^k T(K)), so k = O(log n)
//     makes the fallback negligible while fixing space up front.
//
// Reproduced: (a) conciliator rounds used with/without contention and the
// fast path's work on solo starts; (b) fallback entry frequency as a
// function of k, against the (1-δ)^k geometric envelope; (c) bounded vs
// unbounded cost.
#include <cmath>
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

void fastpath_table() {
  table t({"start", "n", "trials", "mean_conciliator_rounds", "indiv_mean",
           "agree"});
  const std::size_t n = 16;
  struct start_case {
    const char* name;
    analysis::input_pattern pattern;
    bool sequential;
  };
  const start_case cases[] = {
      {"solo-finisher (sequential)", analysis::input_pattern::half_half,
       true},
      {"unanimous (random sched)", analysis::input_pattern::unanimous,
       false},
      {"contended (random sched)", analysis::input_pattern::half_half,
       false},
  };
  for (const auto& c : cases) {
    const std::size_t trials = 300;
    running_stats rounds, indiv;
    std::size_t agreed = 0;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      std::unique_ptr<sim::adversary> adv;
      if (c.sequential)
        adv = std::make_unique<sim::fixed_order>(
            sim::fixed_order::mode::sequential);
      else
        adv = std::make_unique<sim::random_oblivious>();
      std::size_t parts = 0;
      auto build = [&parts](address_space& mem, std::size_t)
          -> std::unique_ptr<deciding_object<sim_env>> {
        struct observer final : deciding_object<sim_env> {
          std::unique_ptr<unbounded_consensus<sim_env>> inner;
          std::size_t* parts;
          proc<decided> invoke(sim_env& env, value_t v) override {
            decided d = co_await inner->invoke(env, v);
            *parts = inner->parts_built();
            co_return d;
          }
          std::string name() const override { return "observer"; }
        };
        auto o = std::make_unique<observer>();
        o->inner =
            make_impatient_consensus<sim_env>(mem, make_binary_quorums());
        o->parts = &parts;
        return o;
      };
      analysis::trial_options opts;
      opts.seed = seed;
      auto res = analysis::run_object_trial(
          build, analysis::make_inputs(c.pattern, n, 2, seed), *adv, opts);
      if (!res.completed()) continue;
      agreed += res.agreement();
      rounds.add(parts > 2 ? (static_cast<double>(parts) - 2.0) / 2.0 : 0.0);
      indiv.add(static_cast<double>(res.max_individual_ops));
    }
    t.row()
        .cell(c.name)
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(rounds.mean(), 2)
        .cell(indiv.mean(), 2)
        .cell(static_cast<double>(agreed) / trials, 3);
  }
  t.emit("E8a: the R₋₁; R₀ fast path avoids conciliators when starts agree",
         "e8_fastpath");
}

void bounded_table() {
  table t({"k", "n", "trials", "fallback_rate", "geometric_(1-delta)^k",
           "indiv_mean", "agree"});
  const std::size_t n = 8;
  constexpr double kDelta = 0.0553;  // worst-case envelope
  for (std::size_t k : {0u, 1u, 2u, 4u, 8u, 16u}) {
    const std::size_t trials = 400;
    std::size_t fallbacks = 0, agreed = 0;
    running_stats indiv;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      sim::random_oblivious adv;
      std::uint64_t entries = 0;
      auto build = [&entries, k](address_space& mem, std::size_t nn)
          -> std::unique_ptr<deciding_object<sim_env>> {
        struct observer final : deciding_object<sim_env> {
          std::unique_ptr<bounded_consensus<sim_env>> inner;
          std::uint64_t* entries;
          proc<decided> invoke(sim_env& env, value_t v) override {
            decided d = co_await inner->invoke(env, v);
            *entries = inner->fallback_entries();
            co_return d;
          }
          std::string name() const override { return "observer"; }
        };
        auto o = std::make_unique<observer>();
        o->inner = std::make_unique<bounded_consensus<sim_env>>(
            ratifier_factory<sim_env>(mem, make_binary_quorums()),
            impatient_factory<sim_env>(mem), k,
            std::make_unique<cil_consensus<sim_env>>(mem, nn));
        o->entries = &entries;
        return o;
      };
      analysis::trial_options opts;
      opts.seed = seed;
      opts.max_steps = 10'000'000;
      auto res = analysis::run_object_trial(
          build,
          analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                seed),
          *(&adv), opts);
      if (!res.completed()) continue;
      fallbacks += entries > 0;
      agreed += res.agreement();
      indiv.add(static_cast<double>(res.max_individual_ops));
    }
    double geometric = std::pow(1.0 - kDelta, static_cast<double>(k));
    t.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(static_cast<double>(fallbacks) / trials, 3)
        .cell(geometric, 3)
        .cell(indiv.mean(), 2)
        .cell(static_cast<double>(agreed) / trials, 3);
  }
  t.emit("E8b: bounded construction — fallback rate decays geometrically in k",
         "e8_bounded");
}

}  // namespace

int main() {
  print_header("E8: fast path (§4.1) and bounded construction (Theorem 5)",
               "claims: agreeing starts decide in the R₋₁;R₀ prefix; "
               "fallback probability <= (1-δ)^k; bounded cost ≈ unbounded "
               "cost for k = O(log n)");
  fastpath_table();
  bounded_table();
  return 0;
}
