// E8 — §4.1: the fast path and Theorem 5's bounded construction.
//
// Paper claims:
//   * the prefix R₋₁; R₀ lets executions where the fastest processes
//     agree decide without ever paying for a conciliator;
//   * the bounded object B = (R₋₁; R₀; (C;R)^k; K) is consensus with
//     expected cost O((1/δ)(T(R)+T(C)) + (1-δ)^k T(K)), so k = O(log n)
//     makes the fallback negligible while fixing space up front.
//
// Reproduced: (a) conciliator rounds used with/without contention and the
// fast path's work on solo starts; (b) fallback entry frequency as a
// function of k, against the (1-δ)^k geometric envelope; (c) bounded vs
// unbounded cost.  Protocol-internal counters (parts_built,
// fallback_entries) are read through engine probes instead of observer
// wrappers.
#include <cmath>
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

// Conciliator rounds actually entered: the unbounded stack builds parts
// R₋₁, R₀ up front and then (C; R) pairs on demand, so rounds =
// (parts_built - 2) / 2.
analysis::probe conciliator_rounds_probe() {
  return {"conciliator_rounds",
          [](const sim::sim_world&, const deciding_object<sim_env>& obj) {
            const auto* u =
                dynamic_cast<const unbounded_consensus<sim_env>*>(&obj);
            if (u == nullptr) return 0.0;
            std::size_t parts = u->parts_built();
            return parts > 2 ? (static_cast<double>(parts) - 2.0) / 2.0 : 0.0;
          }};
}

analysis::probe fallback_probe() {
  return {"fallback",
          [](const sim::sim_world&, const deciding_object<sim_env>& obj) {
            const auto* b =
                dynamic_cast<const bounded_consensus<sim_env>*>(&obj);
            return (b != nullptr && b->fallback_entries() > 0) ? 1.0 : 0.0;
          }};
}

analysis::sim_object_builder unbounded() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

analysis::sim_object_builder bounded(std::size_t k) {
  return stack_builder<sim_env>(stack_for("bounded").with_rounds(k));
}

void fastpath_table(bench_harness& h) {
  const std::size_t n = 16;
  struct start_case {
    const char* name;
    analysis::input_pattern pattern;
    bool sequential;
  };
  const start_case cases[] = {
      {"solo-finisher (sequential)", analysis::input_pattern::half_half,
       true},
      {"unanimous (random sched)", analysis::input_pattern::unanimous,
       false},
      {"contended (random sched)", analysis::input_pattern::half_half,
       false},
  };
  std::vector<trial_grid> grid;
  for (const auto& c : cases) {
    grid.push_back({
        .label = std::string("e8_fastpath/") + c.name,
        .build = unbounded(),
        .make_adversary =
            c.sequential
                ? adversary_factory([] {
                    return std::make_unique<sim::fixed_order>(
                        sim::fixed_order::mode::sequential);
                  })
                : adversary_factory(),
        .pattern = c.pattern,
        .n = n,
        .trials = h.trials(300),
        .probes = {conciliator_rounds_probe()},
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"start", "n", "trials", "mean_conciliator_rounds", "indiv_mean",
           "agree"});
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& s = summaries[i];
    const auto* rounds = s.find_probe("conciliator_rounds");
    t.row()
        .cell(cases[i].name)
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(rounds != nullptr ? rounds->mean : 0.0, 2)
        .cell(s.max_individual_ops.mean, 2)
        .cell(s.agreement_rate(), 3);
  }
  h.emit(t, "E8a: the R₋₁; R₀ fast path avoids conciliators when starts agree",
         "e8_fastpath");
}

void bounded_table(bench_harness& h) {
  const std::size_t n = 8;
  constexpr double kDelta = 0.0553;  // worst-case envelope
  const std::vector<std::size_t> ks = {0, 1, 2, 4, 8, 16};
  std::vector<trial_grid> grid;
  for (std::size_t k : ks) {
    grid.push_back({
        .label = "e8_bounded/k=" + std::to_string(k),
        .build = bounded(k),
        .pattern = analysis::input_pattern::half_half,
        .n = n,
        .trials = h.trials(400),
        .limits = {.max_steps = 10'000'000},
        .probes = {fallback_probe()},
    });
  }
  // Reference: the unbounded stack on the same workload.
  grid.push_back({
      .label = "e8_bounded/unbounded",
      .build = unbounded(),
      .pattern = analysis::input_pattern::half_half,
      .n = n,
      .trials = h.trials(400),
  });
  auto summaries = h.run_grid(std::move(grid));

  table t({"k", "n", "trials", "fallback_rate", "geometric_(1-delta)^k",
           "indiv_mean", "agree"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto& s = summaries[i];
    const auto* fb = s.find_probe("fallback");
    double geometric = std::pow(1.0 - kDelta, static_cast<double>(ks[i]));
    t.row()
        .cell(static_cast<std::uint64_t>(ks[i]))
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(fb != nullptr ? fb->mean : 0.0, 3)
        .cell(geometric, 3)
        .cell(s.max_individual_ops.mean, 2)
        .cell(s.agreement_rate(), 3);
  }
  const auto& u = summaries[ks.size()];
  t.row()
      .cell("unbounded")
      .cell(static_cast<std::uint64_t>(n))
      .cell(static_cast<std::uint64_t>(u.trials))
      .cell("-")
      .cell("-")
      .cell(u.max_individual_ops.mean, 2)
      .cell(u.agreement_rate(), 3);
  h.emit(t, "E8b: bounded construction — fallback rate decays geometrically in k",
         "e8_bounded");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e8_fastpath_bounded", argc, argv);
  print_header("E8: fast path (§4.1) and bounded construction (Theorem 5)",
               "claims: agreeing starts decide in the R₋₁;R₀ prefix; "
               "fallback probability <= (1-δ)^k; bounded cost ≈ unbounded "
               "cost for k = O(log n)");
  fastpath_table(h);
  bounded_table(h);
  return h.finish();
}
