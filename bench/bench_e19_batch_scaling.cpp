// E19 — Batch-engine scaling: lockstep width vs throughput, no paper claim.
//
// E16 gates the engines' absolute throughput; this bench sweeps the
// *batch width* of the lockstep interpreter (analysis/batch_engine.h) on
// the two workloads it accelerates — the bare impatient conciliator and
// the unbounded consensus stack — against the scalar oracle.  Each cell
// is the same trial set (identical results by the bit-identity contract;
// only the timing columns move), so the table reads as a scaling curve:
// B=1 prices the interpreter's dispatch against the scalar coroutines,
// and growing B shows how much of the speedup comes from amortizing
// setup versus interleaving independent trials through the step loop.
#include <memory>
#include <string>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::trial_grid conciliator_cell(std::size_t n, std::size_t trials) {
  return {
      .label = "e19_conciliator/n=" + std::to_string(n),
      .build =
          [](address_space& mem, std::size_t) {
            return std::make_unique<impatient_conciliator<sim_env>>(mem);
          },
      .n = n,
      .trials = trials,
      .batch_hint = analysis::batch_impatient(),
  };
}

analysis::trial_grid consensus_cell(std::size_t n, std::size_t trials) {
  return {
      .label = "e19_consensus/n=" + std::to_string(n),
      .build = stack_builder<sim_env>(stack_for("impatient")),
      .n = n,
      .trials = trials,
      .batch_hint = analysis::batch_for(stack_for("impatient")),
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e19_batch_scaling", argc, argv);
  print_header("E19: batch-engine scaling (lockstep width vs steps/sec)",
               "engine scaling sweep — no paper claim; same trials at "
               "every width, only the timing columns move");

  constexpr std::size_t kN = 64;
  const std::size_t conc_trials = h.trials(trials_for(kN, 400'000));
  const std::size_t cons_trials = h.trials(trials_for(kN, 200'000));

  struct row {
    std::string engine;
    analysis::summary_stats s;
  };
  std::vector<row> rows;
  // Each engine config gets its own cell label: recorded cells stay
  // unique in the artifact (the shard merge matches cells by label).
  auto sweep = [&](const analysis::trial_grid& cell) {
    {
      analysis::trial_grid c = cell;
      c.label += "/scalar";
      analysis::experiment_options o = h.engine_options();
      o.engine = analysis::engine_kind::scalar;
      rows.push_back({"scalar", h.run(std::move(c), o)});
    }
    for (std::size_t b : {1u, 4u, 16u, 64u, 256u}) {
      analysis::trial_grid c = cell;
      c.label += "/B=" + std::to_string(b);
      analysis::experiment_options o = h.engine_options();
      o.engine = analysis::engine_kind::batch;
      o.batch = b;
      rows.push_back({"batch/B=" + std::to_string(b), h.run(std::move(c), o)});
    }
  };
  sweep(conciliator_cell(kN, conc_trials));
  sweep(consensus_cell(kN, cons_trials));

  table t({"cell", "engine", "trials", "steps_mean", "step_ms",
           "Msteps/s_p50", "vs_scalar"});
  double scalar_p50 = 0.0;
  for (const auto& r : rows) {
    if (r.engine == "scalar") scalar_p50 = r.s.steps_per_sec.p50;
    const double rel =
        scalar_p50 > 0.0 ? r.s.steps_per_sec.p50 / scalar_p50 : 0.0;
    t.row()
        .cell(r.s.label)
        .cell(r.engine)
        .cell(static_cast<std::uint64_t>(r.s.trials))
        .cell(r.s.steps.mean, 1)
        .cell(r.s.perf.ms(analysis::perf_phase::step), 1)
        .cell(r.s.steps_per_sec.p50 / 1e6, 3)
        .cell(rel, 2);
  }
  h.emit(t, "E19: lockstep batch width scaling", "e19_batch_scaling");
  return h.finish();
}
