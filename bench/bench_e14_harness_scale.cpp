// E14 — harness validation: the simulator at laptop scale.
//
// Not a paper claim but a reproduction-credibility check: the
// one-operation-per-step interleaving simulator must be fast enough that
// every experiment's trial counts are honest, and the algorithms must
// keep their shape at sizes far beyond the statistical sweeps (n in the
// tens of thousands — coroutine frames and registers stay cheap).
#include <chrono>
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder conciliator() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder consensus() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

}  // namespace

int main() {
  print_header("E14: simulator scale & throughput",
               "harness check: single executions at large n, with the "
               "Theorem 7 shape intact");
  table t({"object", "n", "total_ops", "indiv_max", "bound", "wall_ms",
           "steps_per_sec"});
  struct row {
    const char* name;
    analysis::sim_object_builder build;
    bool conciliator_bound;
  };
  const row rows[] = {
      {"conciliator", conciliator(), true},
      {"binary-consensus", consensus(), false},
  };
  for (const auto& r : rows) {
    for (std::size_t n : {1024u, 8192u, 65536u}) {
      sim::random_oblivious adv;
      analysis::trial_options opts;
      opts.seed = 42;
      auto inputs =
          analysis::make_inputs(analysis::input_pattern::half_half, n, 2, 1);
      auto t0 = std::chrono::steady_clock::now();
      auto res = analysis::run_object_trial(r.build, inputs, adv, opts);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      t.row()
          .cell(r.name)
          .cell(static_cast<std::uint64_t>(n))
          .cell(res.total_ops)
          .cell(res.max_individual_ops)
          .cell(r.conciliator_bound
                    ? std::to_string(2 * lg_ceil(n) + 4)
                    : std::string("-"))
          .cell(ms, 1)
          .cell(ms > 0 ? static_cast<double>(res.steps) / (ms / 1000.0)
                       : 0.0,
                0);
    }
  }
  t.emit("E14: single large executions (includes world construction)",
         "e14_scale");
  return 0;
}
