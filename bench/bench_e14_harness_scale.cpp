// E14 — harness validation: the simulator at laptop scale.
//
// Not a paper claim but a reproduction-credibility check: the
// one-operation-per-step interleaving simulator must be fast enough that
// every experiment's trial counts are honest, and the algorithms must
// keep their shape at sizes far beyond the statistical sweeps (n in the
// tens of thousands — coroutine frames and registers stay cheap).
// Per-execution wall time comes from the engine's trial records.
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder conciliator() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder consensus() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e14_harness_scale", argc, argv);
  print_header("E14: simulator scale & throughput",
               "harness check: single executions at large n, with the "
               "Theorem 7 shape intact");
  struct row {
    const char* name;
    analysis::sim_object_builder build;
    bool conciliator_bound;
  };
  const row rows[] = {
      {"conciliator", conciliator(), true},
      {"binary-consensus", consensus(), false},
  };
  const std::vector<std::size_t> ns = {1024, 8192, 65536};

  std::vector<trial_grid> grid;
  for (const auto& r : rows) {
    for (std::size_t n : ns) {
      grid.push_back({
          .label = std::string("e14_scale/") + r.name +
                   "/n=" + std::to_string(n),
          .build = r.build,
          .n = n,
          .trials = 1,
          .base_seed = 42,
          .keep_records = true,
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"object", "n", "total_ops", "indiv_max", "bound", "wall_ms",
           "steps_per_sec"});
  std::size_t i = 0;
  for (const auto& r : rows) {
    for (std::size_t n : ns) {
      const auto& s = summaries[i++];
      const auto& rec = s.records.at(0);
      double ms = rec.wall_ms;
      t.row()
          .cell(r.name)
          .cell(static_cast<std::uint64_t>(n))
          .cell(rec.result.total_ops)
          .cell(rec.result.max_individual_ops)
          .cell(r.conciliator_bound ? std::to_string(2 * lg_ceil(n) + 4)
                                    : std::string("-"))
          .cell(ms, 1)
          .cell(ms > 0 ? static_cast<double>(rec.result.steps) / (ms / 1000.0)
                       : 0.0,
                0);
    }
  }
  h.emit(t, "E14: single large executions (includes world construction)",
         "e14_scale");
  return h.finish();
}
