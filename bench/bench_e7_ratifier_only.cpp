// E7 — §4.2: consensus with ratifiers only.
//
// Paper claims: R = R₁; R₂; … solves consensus under restricted
// schedulers — with binary constant-work ratifiers it is "essentially
// equivalent to the lean-consensus protocol of [5]", terminating in
// O(log n) individual work under a noisy scheduler; it also terminates
// under priority-based scheduling [27] (where it is less efficient than
// the 2-register/6-op protocol of [27]).  Under an unrestricted lockstep
// scheduler it does not terminate — which is exactly why conciliators
// exist.
//
// Reproduced: termination rate and individual work of the binary ladder
// under noise levels and priority scheduling; lockstep non-termination;
// indiv/lg n flatness across n under noise.
#include <memory>

#include "baseline/priority_consensus.h"
#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder ladder() {
  return [](address_space& mem, std::size_t) {
    return make_ratifier_only_consensus<sim_env>(mem, make_binary_quorums(),
                                                 2'000'000);
  };
}

void noise_sweep() {
  table t({"sigma", "n", "trials", "terminated", "indiv_mean", "indiv/lgn",
           "total_mean"});
  for (double sigma : {0.25, 0.5, 1.0, 2.0}) {
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
      const std::size_t trials = 60;
      std::size_t done = 0;
      running_stats indiv, total;
      for (std::uint64_t seed = 0; seed < trials; ++seed) {
        sim::noisy adv(sigma);
        analysis::trial_options opts;
        opts.seed = seed;
        opts.max_steps = 400'000;
        auto res = analysis::run_object_trial(
            ladder(),
            analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                  seed),
            adv, opts);
        if (!res.completed()) continue;
        ++done;
        indiv.add(static_cast<double>(res.max_individual_ops));
        total.add(static_cast<double>(res.total_ops));
      }
      t.row()
          .cell(sigma, 2)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(trials))
          .cell(static_cast<std::uint64_t>(done))
          .cell(indiv.mean(), 1)
          .cell(indiv.mean() / std::max(1u, lg_ceil(n)), 2)
          .cell(total.mean(), 1);
    }
  }
  t.emit("E7a: ratifier-only ladder under the noisy scheduler ([5] shape)",
         "e7_noise");
}

void priority_and_lockstep() {
  table t({"scheduler", "n", "trials", "terminated", "indiv_mean"});
  for (std::size_t n : {2u, 8u, 32u}) {
    {
      const std::size_t trials = 40;
      std::size_t done = 0;
      running_stats indiv;
      for (std::uint64_t seed = 0; seed < trials; ++seed) {
        sim::priority_sched adv;
        analysis::trial_options opts;
        opts.seed = seed;
        opts.max_steps = 400'000;
        auto res = analysis::run_object_trial(
            ladder(),
            analysis::make_inputs(analysis::input_pattern::alternating, n, 2,
                                  seed),
            adv, opts);
        if (!res.completed()) continue;
        ++done;
        indiv.add(static_cast<double>(res.max_individual_ops));
      }
      t.row()
          .cell("priority")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(trials))
          .cell(static_cast<std::uint64_t>(done))
          .cell(indiv.mean(), 1);
    }
    {
      // The [27]-style one-register protocol under the same scheduler:
      // two ops per process, the efficiency remark at the end of §4.2.
      const std::size_t trials = 40;
      std::size_t done = 0;
      running_stats indiv;
      for (std::uint64_t seed = 0; seed < trials; ++seed) {
        sim::priority_sched adv;
        analysis::trial_options opts;
        opts.seed = seed;
        auto build = [](address_space& mem, std::size_t) {
          return std::make_unique<priority_consensus<sim_env>>(mem);
        };
        auto res = analysis::run_object_trial(
            build,
            analysis::make_inputs(analysis::input_pattern::alternating, n, 2,
                                  seed),
            adv, opts);
        if (!res.completed()) continue;
        ++done;
        indiv.add(static_cast<double>(res.max_individual_ops));
      }
      t.row()
          .cell("priority-1reg[27]")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(trials))
          .cell(static_cast<std::uint64_t>(done))
          .cell(indiv.mean(), 1);
    }
    {
      // Lockstep (round-robin): must hit the step limit on contended
      // inputs.
      sim::round_robin adv;
      analysis::trial_options opts;
      opts.max_steps = 50'000;
      auto res = analysis::run_object_trial(
          ladder(),
          analysis::make_inputs(analysis::input_pattern::alternating, n, 2,
                                1),
          adv, opts);
      t.row()
          .cell("round-robin")
          .cell(static_cast<std::uint64_t>(n))
          .cell(std::uint64_t{1})
          .cell(static_cast<std::uint64_t>(res.completed() ? 1 : 0))
          .cell(res.completed() ? "-" : "stalled (expected)");
    }
  }
  t.emit("E7b: priority scheduling decides; lockstep stalls", "e7_priority");
}

}  // namespace

int main() {
  print_header("E7: consensus with ratifiers only (§4.2)",
               "claims: terminates under noisy [5] and priority [27] "
               "schedulers (O(log n) individual work under noise); stalls "
               "under lockstep");
  noise_sweep();
  priority_and_lockstep();
  return 0;
}
