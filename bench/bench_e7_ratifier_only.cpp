// E7 — §4.2: consensus with ratifiers only.
//
// Paper claims: R = R₁; R₂; … solves consensus under restricted
// schedulers — with binary constant-work ratifiers it is "essentially
// equivalent to the lean-consensus protocol of [5]", terminating in
// O(log n) individual work under a noisy scheduler; it also terminates
// under priority-based scheduling [27] (where it is less efficient than
// the 2-register/6-op protocol of [27]).  Under an unrestricted lockstep
// scheduler it does not terminate — which is exactly why conciliators
// exist.
//
// Reproduced: termination rate and individual work of the binary ladder
// under noise levels and priority scheduling; lockstep non-termination;
// indiv/lg n flatness across n under noise.
#include <memory>

#include "baseline/priority_consensus.h"
#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder ladder() {
  return stack_builder<sim_env>(
      stack_for("ratifier-only").with_max_rounds(2'000'000));
}

void noise_sweep(bench_harness& h) {
  const std::vector<double> sigmas = {0.25, 0.5, 1.0, 2.0};
  const std::vector<std::size_t> ns = {2, 4, 8, 16, 32};
  std::vector<trial_grid> grid;
  for (double sigma : sigmas) {
    for (std::size_t n : ns) {
      grid.push_back({
          .label = "e7_noise/sigma=" + std::to_string(sigma) +
                   "/n=" + std::to_string(n),
          .build = ladder(),
          .make_adversary =
              [sigma] { return std::make_unique<sim::noisy>(sigma); },
          .n = n,
          .trials = h.trials(60),
          .limits = {.max_steps = 400'000},
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"sigma", "n", "trials", "terminated", "indiv_mean", "indiv/lgn",
           "total_mean"});
  std::size_t i = 0;
  for (double sigma : sigmas) {
    for (std::size_t n : ns) {
      const auto& s = summaries[i++];
      t.row()
          .cell(sigma, 2)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(s.trials))
          .cell(static_cast<std::uint64_t>(s.completed))
          .cell(s.max_individual_ops.mean, 1)
          .cell(s.max_individual_ops.mean / std::max(1u, lg_ceil(n)), 2)
          .cell(s.total_ops.mean, 1);
    }
  }
  h.emit(t, "E7a: ratifier-only ladder under the noisy scheduler ([5] shape)",
         "e7_noise");
}

void priority_and_lockstep(bench_harness& h) {
  const std::vector<std::size_t> ns = {2, 8, 32};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e7_priority/ladder/n=" + std::to_string(n),
        .build = ladder(),
        .make_adversary =
            [] { return std::make_unique<sim::priority_sched>(); },
        .pattern = analysis::input_pattern::alternating,
        .n = n,
        .trials = h.trials(40),
        .limits = {.max_steps = 400'000},
    });
    // The [27]-style one-register protocol under the same scheduler:
    // two ops per process, the efficiency remark at the end of §4.2.
    grid.push_back({
        .label = "e7_priority/1reg/n=" + std::to_string(n),
        .build = [](address_space& mem, std::size_t)
            -> std::unique_ptr<deciding_object<sim_env>> {
          return std::make_unique<priority_consensus<sim_env>>(mem);
        },
        .make_adversary =
            [] { return std::make_unique<sim::priority_sched>(); },
        .pattern = analysis::input_pattern::alternating,
        .n = n,
        .trials = h.trials(40),
    });
    // Lockstep (round-robin): must hit the step limit on contended
    // inputs.
    grid.push_back({
        .label = "e7_lockstep/n=" + std::to_string(n),
        .build = ladder(),
        .make_adversary =
            [] { return std::make_unique<sim::round_robin>(); },
        .pattern = analysis::input_pattern::alternating,
        .n = n,
        .trials = 1,
        .limits = {.max_steps = 50'000},
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"scheduler", "n", "trials", "terminated", "indiv_mean"});
  std::size_t i = 0;
  for (std::size_t n : ns) {
    const auto& ladder_s = summaries[i++];
    const auto& onereg = summaries[i++];
    const auto& lockstep = summaries[i++];
    t.row()
        .cell("priority")
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(ladder_s.trials))
        .cell(static_cast<std::uint64_t>(ladder_s.completed))
        .cell(ladder_s.max_individual_ops.mean, 1);
    t.row()
        .cell("priority-1reg[27]")
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(onereg.trials))
        .cell(static_cast<std::uint64_t>(onereg.completed))
        .cell(onereg.max_individual_ops.mean, 1);
    t.row()
        .cell("round-robin")
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(lockstep.trials))
        .cell(static_cast<std::uint64_t>(lockstep.completed))
        .cell(lockstep.completed ? "-" : "stalled (expected)");
  }
  h.emit(t, "E7b: priority scheduling decides; lockstep stalls",
         "e7_priority");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e7_ratifier_only", argc, argv);
  print_header("E7: consensus with ratifiers only (§4.2)",
               "claims: terminates under noisy [5] and priority [27] "
               "schedulers (O(log n) individual work under noise); stalls "
               "under lockstep");
  noise_sweep(h);
  priority_and_lockstep(h);
  return h.finish();
}
