// E15 — the fault matrix: which invariants survive which fault model.
//
// Paper context: the decomposition's guarantees (Lemmas 1–3 — validity,
// coherence, probabilistic agreement; §1's up-to-(n-1) crash tolerance)
// are proved for crash-stop processes over atomic registers.  This bench
// sweeps the paper's stacks across a matrix of *stronger* fault models —
// crash-stop, crash-restart (Delporte-Gallet et al. 2022), regular
// registers and transient write omission (Hadzilacos–Hu–Toueg 2020) —
// and reports which invariants held.  Expected shape: process faults
// (crash, restart) never break agreement/validity (the objects are
// wait-free and the checks quantify over escaped outputs), while
// register faults may break termination or agreement — the guarantees
// genuinely depend on atomicity, and the matrix shows where.
//
// A second section exercises the rt backend's cooperative fault points
// and the trial watchdog: crash/restart/stall injections on real
// threads, including a deliberately hung trial that the watchdog must
// reclaim as timed_out without wedging the suite.  Only deterministic
// columns (fault outcomes, not op counts) are printed, so the artifact
// stays byte-identical across --threads and re-runs.
#include <memory>
#include <string>

#include "common.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using analysis::fault_plan;
using sim::sim_env;

// Both backends resolve the same registry entry — one spec, two builds.
struct stack_def {
  std::string name;
  analysis::sim_object_builder sim_build;
  analysis::rt_object_builder rt_build;
};

std::vector<stack_def> stacks() {
  std::vector<stack_def> out;
  for (const char* name : {"impatient", "bounded", "cil"}) {
    const stack_spec spec = stack_for(name);
    out.push_back({name, stack_builder<sim_env>(spec),
                   stack_builder<rt::rt_env>(spec)});
  }
  return out;
}

struct fault_mode {
  std::string name;
  fault_plan faults;  // static plan, or:
  std::function<fault_plan(std::uint64_t, std::uint64_t)> faults_for;
};

std::vector<fault_mode> fault_modes(std::size_t n) {
  std::vector<fault_mode> out;
  out.push_back({"none", {}, nullptr});
  out.push_back({"crash3", {},
                 [n](std::uint64_t, std::uint64_t seed) {
                   fault_plan p;
                   for (process_id v = 0; v < 3; ++v)
                     p.crash(static_cast<process_id>((seed + v * 3) % n),
                             (seed >> (4 * v)) % 8);
                   return p;
                 }});
  out.push_back({"restart2", {},
                 [n](std::uint64_t, std::uint64_t seed) {
                   fault_plan p;
                   p.restart(static_cast<process_id>(seed % n), 2 + seed % 6);
                   p.restart(static_cast<process_id>((seed + 1) % n),
                             4 + (seed >> 8) % 6);
                   return p;
                 }});
  out.push_back({"regular4", fault_plan{}.regular_registers(4), nullptr});
  out.push_back({"omit3x4", fault_plan{}.omit_writes(3, 4), nullptr});
  out.push_back({"storm", {},
                 [n](std::uint64_t, std::uint64_t seed) {
                   fault_plan p;
                   p.crash(static_cast<process_id>(seed % n), seed % 8);
                   p.restart(static_cast<process_id>((seed + 2) % n),
                             2 + seed % 5);
                   p.regular_registers(8);
                   return p;
                 }});
  return out;
}

void sim_matrix(bench_harness& h) {
  const std::size_t n = 8;
  auto defs = stacks();
  auto modes = fault_modes(n);

  std::vector<trial_grid> grid;
  for (const auto& s : defs)
    for (const auto& m : modes)
      grid.push_back({
          .label = "e15_matrix/" + s.name + "/" + m.name,
          .build = s.sim_build,
          .n = n,
          .trials = h.trials(300),
          .limits = {.max_steps = 300'000},
          .faults = m.faults,
          .faults_for = m.faults_for,
      });
  auto summaries = h.run_grid(std::move(grid));

  table t({"stack", "faults", "trials", "done", "agree", "cohere", "valid",
           "crashed", "restarts", "stale", "omitted"});
  std::size_t i = 0;
  for (const auto& s : defs)
    for (const auto& m : modes) {
      const auto& sum = summaries[i++];
      t.row()
          .cell(s.name)
          .cell(m.name)
          .cell(static_cast<std::uint64_t>(sum.trials))
          .cell(static_cast<std::uint64_t>(sum.completed))
          .cell(static_cast<std::uint64_t>(sum.agreed))
          .cell(static_cast<std::uint64_t>(sum.coherent))
          .cell(static_cast<std::uint64_t>(sum.valid))
          .cell(static_cast<std::uint64_t>(sum.crashed_processes))
          .cell(sum.restarts)
          .cell(sum.stale_reads)
          .cell(sum.omitted_writes);
    }
  h.emit(t,
         "E15a: invariants held per (stack x fault model), sim backend "
         "(n=8; process faults keep the contract, register faults may not)",
         "e15_matrix");
}

void rt_scenarios(bench_harness& h) {
  struct scenario {
    std::string name;
    fault_plan faults;
    std::uint32_t watchdog_ms;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"none", {}, 5'000});
  scenarios.push_back({"crash(2@3)", fault_plan{}.crash(2, 3), 5'000});
  scenarios.push_back({"restart(1@2)", fault_plan{}.restart(1, 2), 5'000});
  scenarios.push_back(
      {"stall+resume(0@2)", fault_plan{}.stall(0, 2, 5), 5'000});
  // The hung trial: a stall that never resumes.  The watchdog must
  // reclaim it as timed_out and the scenario loop must keep going.
  scenarios.push_back({"hang(1@2)+watchdog", fault_plan{}.stall(1, 2), 400});

  const std::size_t n = 4;
  const std::size_t trials = h.trials(6);
  auto rt_build = stacks()[0].rt_build;  // impatient stack

  table t({"scenario", "trials", "halted", "crashed", "restarted",
           "timed_out", "agree", "valid"});
  for (const auto& sc : scenarios) {
    std::uint64_t halted = 0, crashed = 0, restarted = 0, timed_out = 0;
    std::uint64_t agree = 0, valid = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t seed = analysis::derive_trial_seed(21, trial);
      auto inputs = analysis::make_inputs(analysis::input_pattern::half_half,
                                          n, 2, seed);
      analysis::rt_trial_options opts;
      opts.seed = seed;
      opts.faults = sc.faults;
      opts.watchdog_ms = sc.watchdog_ms;
      auto res = analysis::run_rt_object_trial(rt_build, inputs, opts);
      halted += res.halted_pids.size();
      crashed += res.crashed_pids.size();
      restarted += res.restarted_pids.size();
      timed_out += res.timed_out();
      agree += res.agreement();
      valid += res.valid(inputs);
    }
    t.row()
        .cell(sc.name)
        .cell(static_cast<std::uint64_t>(trials))
        .cell(halted)
        .cell(crashed)
        .cell(restarted)
        .cell(timed_out)
        .cell(agree)
        .cell(valid);
  }
  h.emit(t,
         "E15b: rt-backend cooperative faults + watchdog (n=4; hung trial "
         "reported timed_out, suite completes)",
         "e15_rt_faults");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e15_fault_matrix", argc, argv);
  print_header(
      "E15: fault matrix — crash-stop / crash-restart / regular registers "
      "/ omission / rt watchdog",
      "claims: wait-free stacks keep validity+coherence under any process "
      "faults; register faults can break the atomic-register guarantees; "
      "hung rt trials are reclaimed as timed_out");
  sim_matrix(h);
  rt_scenarios(h);
  return h.finish();
}
