// E9 — baselines: what the paper improves on.
//
// Paper claims (§1, §5.2): previous probabilistic-write protocols used a
// constant Θ(1/n) write probability, giving O(n) individual AND total
// work (Chor–Israeli–Li [20]; Cheung [19] reaches O(n log log n) total);
// "no previous protocol in this model uses sublinear individual work or
// linear total work for constant m."
//
// Reproduced: head-to-head n-sweep of
//   * impatient stack (this paper): O(log n) individual / O(n) total,
//   * fixed-probability stack (CIL-style conciliator in the same
//     framework): Θ(n) individual,
//   * CIL racing consensus (full classic protocol): Θ(n)+ individual.
// The "who wins, by what factor" columns are the paper's headline.
#include <memory>

#include "common.h"
#include "baseline/cil_consensus.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient_stack() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

analysis::sim_object_builder fixed_prob_stack() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<unbounded_consensus<sim_env>>(
        ratifier_factory<sim_env>(mem, make_binary_quorums()),
        fixed_probability_factory<sim_env>(mem));
  };
}

analysis::sim_object_builder cil() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<cil_consensus<sim_env>>(mem, n);
  };
}

void solo_table() {
  // The individual-work separation is starkest for a process running
  // alone (sequential scheduler): the impatient conciliator escalates to
  // probability 1 within lg n attempts, while a fixed Θ(1/n) probability
  // needs Θ(n) attempts and the CIL race needs Θ(n) rounds of Θ(n)-read
  // collects.  The full stack would hide this behind the §4.1 fast path
  // (a solo run decides in R₋₁ without touching a conciliator), so this
  // table measures the conciliators bare.
  table t({"n", "protocol", "solo_indiv_mean", "solo/lgn", "solo/n"});
  struct proto {
    const char* name;
    analysis::sim_object_builder build;
    std::size_t n_cap;
  };
  const proto protos[] = {
      {"impatient-conciliator",
       [](address_space& mem, std::size_t)
           -> std::unique_ptr<deciding_object<sim_env>> {
         return std::make_unique<impatient_conciliator<sim_env>>(mem);
       },
       1024},
      {"fixedprob-conciliator",
       [](address_space& mem, std::size_t)
           -> std::unique_ptr<deciding_object<sim_env>> {
         return std::make_unique<fixed_probability_conciliator<sim_env>>(
             mem);
       },
       1024},
      {"cil-racing", cil(), 128},
  };
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    for (const auto& p : protos) {
      if (n > p.n_cap) continue;
      const std::size_t trials = 60;
      running_stats indiv;
      for (std::uint64_t seed = 0; seed < trials; ++seed) {
        sim::fixed_order adv(sim::fixed_order::mode::sequential);
        analysis::trial_options opts;
        opts.seed = seed;
        opts.max_steps = 200'000'000;
        auto res = analysis::run_object_trial(
            p.build,
            analysis::make_inputs(analysis::input_pattern::half_half, n, 2,
                                  seed),
            adv, opts);
        if (!res.completed()) continue;
        // The first (solo) process's work is the maximum by construction.
        indiv.add(static_cast<double>(res.max_individual_ops));
      }
      double lgn = std::max(1u, lg_ceil(n));
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(p.name)
          .cell(indiv.mean(), 1)
          .cell(indiv.mean() / lgn, 2)
          .cell(indiv.mean() / static_cast<double>(n), 3);
    }
  }
  t.emit("E9b: solo-run individual work — O(log n) vs Θ(n)", "e9_solo");
}

}  // namespace

int main() {
  print_header("E9: baselines — impatient stack vs CIL-style protocols",
               "claims: O(log n) vs Θ(n) individual work; O(n) total work; "
               "crossover at small n");
  table t({"n", "protocol", "trials", "indiv_mean", "indiv/lgn", "indiv/n",
           "total_mean", "total/n"});
  struct proto {
    const char* name;
    analysis::sim_object_builder build;
    std::size_t n_cap;  // the Θ(n²⁺)-total baselines get too slow beyond
  };
  const proto protos[] = {
      {"impatient-stack", impatient_stack(), 256},
      {"fixedprob-stack", fixed_prob_stack(), 128},
      {"cil-racing", cil(), 64},
  };
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    for (const auto& p : protos) {
      if (n > p.n_cap) continue;
      std::size_t trials = trials_for(n, 8'000);
      auto agg = run_trials(p.build, analysis::input_pattern::half_half, n,
                            2, [] { return std::make_unique<sim::random_oblivious>(); },
                            trials, /*seed0=*/1,
                            /*max_steps=*/200'000'000);
      double lgn = std::max(1u, lg_ceil(n));
      t.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(p.name)
          .cell(static_cast<std::uint64_t>(trials))
          .cell(agg.individual_ops.mean(), 1)
          .cell(agg.individual_ops.mean() / lgn, 2)
          .cell(agg.individual_ops.mean() / static_cast<double>(n), 3)
          .cell(agg.total_ops.mean(), 1)
          .cell(agg.total_ops.mean() / static_cast<double>(n), 2);
    }
  }
  t.emit("E9a: individual/total work under a random scheduler",
         "e9_baselines");
  solo_table();
  return 0;
}
