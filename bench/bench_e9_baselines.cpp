// E9 — baselines: what the paper improves on.
//
// Paper claims (§1, §5.2): previous probabilistic-write protocols used a
// constant Θ(1/n) write probability, giving O(n) individual AND total
// work (Chor–Israeli–Li [20]; Cheung [19] reaches O(n log log n) total);
// "no previous protocol in this model uses sublinear individual work or
// linear total work for constant m."
//
// Reproduced: head-to-head n-sweep of
//   * impatient stack (this paper): O(log n) individual / O(n) total,
//   * fixed-probability stack (CIL-style conciliator in the same
//     framework): Θ(n) individual,
//   * CIL racing consensus (full classic protocol): Θ(n)+ individual.
// The "who wins, by what factor" columns are the paper's headline.
#include <memory>

#include "common.h"
#include "baseline/cil_consensus.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient_stack() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

analysis::sim_object_builder fixed_prob_stack() {
  return stack_builder<sim_env>(stack_for("fixed-probability"));
}

analysis::sim_object_builder cil() {
  return stack_builder<sim_env>(stack_for("cil"));
}

struct proto {
  const char* name;
  analysis::sim_object_builder build;
  std::size_t n_cap;  // the Θ(n²⁺)-total baselines get too slow beyond
};

void sweep_table(bench_harness& h) {
  const proto protos[] = {
      {"impatient-stack", impatient_stack(), 256},
      {"fixedprob-stack", fixed_prob_stack(), 128},
      {"cil-racing", cil(), 64},
  };
  const std::vector<std::size_t> ns = {2, 4, 8, 16, 32, 64, 128, 256};

  struct cell_info {
    std::size_t n;
    const char* name;
  };
  std::vector<cell_info> infos;
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    for (const auto& p : protos) {
      if (n > p.n_cap) continue;
      infos.push_back({n, p.name});
      grid.push_back({
          .label = std::string("e9_baselines/") + p.name +
                   "/n=" + std::to_string(n),
          .build = p.build,
          .n = n,
          .trials = h.trials(trials_for(n, 8'000)),
          .base_seed = 1,
          .limits = {.max_steps = 200'000'000},
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "protocol", "trials", "indiv_mean", "indiv/lgn", "indiv/n",
           "total_mean", "total/n"});
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const auto& s = summaries[i];
    double n = static_cast<double>(infos[i].n);
    double lgn = std::max(1u, lg_ceil(infos[i].n));
    t.row()
        .cell(static_cast<std::uint64_t>(infos[i].n))
        .cell(infos[i].name)
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.max_individual_ops.mean, 1)
        .cell(s.max_individual_ops.mean / lgn, 2)
        .cell(s.max_individual_ops.mean / n, 3)
        .cell(s.total_ops.mean, 1)
        .cell(s.total_ops.mean / n, 2);
  }
  h.emit(t, "E9a: individual/total work under a random scheduler",
         "e9_baselines");
}

void solo_table(bench_harness& h) {
  // The individual-work separation is starkest for a process running
  // alone (sequential scheduler): the impatient conciliator escalates to
  // probability 1 within lg n attempts, while a fixed Θ(1/n) probability
  // needs Θ(n) attempts and the CIL race needs Θ(n) rounds of Θ(n)-read
  // collects.  The full stack would hide this behind the §4.1 fast path
  // (a solo run decides in R₋₁ without touching a conciliator), so this
  // table measures the conciliators bare.
  const proto protos[] = {
      {"impatient-conciliator",
       [](address_space& mem, std::size_t)
           -> std::unique_ptr<deciding_object<sim_env>> {
         return std::make_unique<impatient_conciliator<sim_env>>(mem);
       },
       1024},
      {"fixedprob-conciliator",
       [](address_space& mem, std::size_t)
           -> std::unique_ptr<deciding_object<sim_env>> {
         return std::make_unique<fixed_probability_conciliator<sim_env>>(
             mem);
       },
       1024},
      {"cil-racing", cil(), 128},
  };
  const std::vector<std::size_t> ns = {4, 16, 64, 256, 1024};

  struct cell_info {
    std::size_t n;
    const char* name;
  };
  std::vector<cell_info> infos;
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    for (const auto& p : protos) {
      if (n > p.n_cap) continue;
      infos.push_back({n, p.name});
      grid.push_back({
          .label = std::string("e9_solo/") + p.name +
                   "/n=" + std::to_string(n),
          .build = p.build,
          .make_adversary =
              [] {
                return std::make_unique<sim::fixed_order>(
                    sim::fixed_order::mode::sequential);
              },
          .n = n,
          .trials = h.trials(60),
          .limits = {.max_steps = 200'000'000},
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "protocol", "solo_indiv_mean", "solo/lgn", "solo/n"});
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const auto& s = summaries[i];
    double lgn = std::max(1u, lg_ceil(infos[i].n));
    // The first (solo) process's work is the maximum by construction.
    t.row()
        .cell(static_cast<std::uint64_t>(infos[i].n))
        .cell(infos[i].name)
        .cell(s.max_individual_ops.mean, 1)
        .cell(s.max_individual_ops.mean / lgn, 2)
        .cell(s.max_individual_ops.mean / static_cast<double>(infos[i].n),
              3);
  }
  h.emit(t, "E9b: solo-run individual work — O(log n) vs Θ(n)", "e9_solo");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e9_baselines", argc, argv);
  print_header("E9: baselines — impatient stack vs CIL-style protocols",
               "claims: O(log n) vs Θ(n) individual work; O(n) total work; "
               "crossover at small n");
  sweep_table(h);
  solo_table(h);
  return h.finish();
}
