// Shared machinery for the experiment benches: aggregate many trials of a
// deciding object under a scheduler family and summarize the paper's
// metrics (agreement frequency with Wilson bounds, expected total work,
// worst-case individual work).
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>

#include "analysis/runner.h"
#include "util/stats.h"
#include "util/table.h"

namespace modcon::bench {

struct aggregate {
  std::size_t trials = 0;
  std::size_t completed = 0;
  std::size_t agreed = 0;
  std::size_t all_decided = 0;
  running_stats total_ops;
  running_stats individual_ops;
  sample_set individual_samples;
  running_stats steps;

  double agreement_rate() const {
    return trials ? static_cast<double>(agreed) / trials : 0.0;
  }
  proportion_ci agreement_ci() const {
    return wilson_interval(agreed, trials);
  }
};

using adversary_factory = std::function<std::unique_ptr<sim::adversary>()>;

// Runs `trials` executions with seeds seed0..seed0+trials-1.
inline aggregate run_trials(const analysis::sim_object_builder& build,
                            analysis::input_pattern pattern, std::size_t n,
                            std::uint64_t m, const adversary_factory& mk_adv,
                            std::size_t trials, std::uint64_t seed0 = 1,
                            std::uint64_t max_steps = 50'000'000) {
  aggregate agg;
  for (std::size_t t = 0; t < trials; ++t) {
    std::uint64_t seed = seed0 + t;
    auto adv = mk_adv();
    auto inputs = analysis::make_inputs(pattern, n, m, seed);
    analysis::trial_options opts;
    opts.seed = seed;
    opts.max_steps = max_steps;
    auto res = analysis::run_object_trial(build, inputs, *adv, opts);
    ++agg.trials;
    if (!res.completed()) continue;
    ++agg.completed;
    agg.agreed += res.agreement();
    agg.all_decided += analysis::all_decided(res.outputs);
    agg.total_ops.add(static_cast<double>(res.total_ops));
    agg.individual_ops.add(static_cast<double>(res.max_individual_ops));
    agg.individual_samples.add(static_cast<double>(res.max_individual_ops));
    agg.steps.add(static_cast<double>(res.steps));
  }
  return agg;
}

// Trial budget that shrinks with n so sweeps stay laptop-friendly.
inline std::size_t trials_for(std::size_t n, std::size_t budget = 400'000) {
  std::size_t t = budget / (n ? n : 1);
  if (t < 40) t = 40;
  if (t > 3000) t = 3000;
  return t;
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "\n##### " << title << " #####\n" << claim << "\n";
}

}  // namespace modcon::bench
