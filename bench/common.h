// Shared machinery for the experiment benches.
//
// Every bench is a declarative grid of trial cells fed to the parallel
// experiment engine (analysis/experiment.h) through a `bench_harness`,
// which layers on the common command line:
//
//   --threads N   worker threads for the trial pool (default: hardware);
//                 results are byte-identical for every N
//   --seeds N     override every cell's trial count (smoke runs, sweeps)
//   --json PATH   write the versioned BENCH_*.json artifact
//   --audit MODE  run the property auditor (check/auditor.h) on trials:
//                 off | sample | all.  The MODCON_AUDIT environment
//                 variable supplies a default (1/all/sample), so ctest
//                 can audit a whole suite without touching commands.
//                 Any audited violation makes finish() return nonzero.
//   --obs         record observability counters on every trial and emit
//                 the schema v3.2 "obs" block into the JSON artifact
//   --trace-out F write a Chrome/Perfetto trace_event JSON of one trial
//                 (trial 0 of the first cell) to F; single-threaded only
//   --progress    live progress on stderr (trials/sec, ETA, fault and
//                 audit counts) — reporting only, results unaffected
//   --telemetry-out F
//                 install the fleet telemetry bus (obs/telemetry.h) and
//                 append cumulative modcon-telemetry v1 JSONL snapshots
//                 to F while the bench runs; artifacts are unaffected
//                 (byte-identical with the bus on or off)
//   --telemetry-interval MS
//                 snapshot cadence for --telemetry-out (default 1000;
//                 0 = only the final line)
//   --engine E    trial engine: scalar | batch | auto (default auto —
//                 cells that qualify for the lockstep batch interpreter
//                 use it, everything else keeps the scalar oracle;
//                 results are byte-identical either way)
//   --shard I/N   run trial slice I of N (scripts/grid_runner.py): each
//                 shardable cell runs the trials with index ≡ I (mod N)
//                 and serializes per-trial records so modcon-merge can
//                 rebuild the single-process artifact byte for byte.
//                 Cells that audit, probe, or observe cannot be merged
//                 from records; shard 0 runs them whole, the rest skip.
//   --deterministic
//                 zero every timing measurement (wall_ms, perf phase ns,
//                 steps/sec) before recording, so two runs of the same
//                 build produce byte-identical artifacts — the mode CI
//                 diffs engines and shard merges under
//
// plus the report plumbing: every summary and every printed table is
// recorded and serialized when --json is given (tables are skipped in
// shard mode: the merged artifact must match the --shard 0/1 reference,
// which records none either).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/batch_engine.h"
#include "analysis/experiment.h"
#include "analysis/multi.h"
#include "analysis/shard.h"
#include "obs/perfetto.h"
#include "obs/telemetry.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"
#include "util/table.h"

namespace modcon::bench {

using analysis::adversary_factory;
using analysis::trial_grid;

struct cli_options {
  std::size_t threads = 0;  // 0 = one worker per hardware thread
  std::size_t seeds = 0;    // 0 = keep each cell's default trial count
  std::string json_path;
  std::string trace_out;      // Perfetto trace of one trial; "" = off
  std::string telemetry_out;  // fleet telemetry JSONL; "" = off
  std::uint32_t telemetry_interval_ms = 1000;  // --telemetry-out cadence
  bool observe = false;   // per-trial obs counters + "obs" JSON block
  bool progress = false;  // live stderr progress from the engine
  analysis::audit_mode audit = analysis::audit_mode::off;
  // --engine: auto routes qualifying cells through the batch engine.
  analysis::engine_kind engine = analysis::engine_kind::auto_select;
  // --shard I/N: this process runs slice I; shard_mode switches the
  // artifact to the mergeable per-trial-record form (analysis/shard.h).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool shard_mode = false;
  bool deterministic = false;  // zero timing fields before recording

  static analysis::audit_mode parse_audit_mode(const std::string& value,
                                               const char* origin) {
    if (value == "off" || value == "0" || value.empty())
      return analysis::audit_mode::off;
    if (value == "sample") return analysis::audit_mode::sample;
    if (value == "all" || value == "1") return analysis::audit_mode::all;
    std::cerr << origin << " expects off|sample|all, got '" << value << "'\n";
    std::exit(2);
  }

  // Consumes recognized flags from argc/argv, compacting the array.
  // Only google-benchmark's own --benchmark_* flags pass through (for
  // benches that hand the leftovers to benchmark::Initialize); anything
  // else unrecognized is a usage error — a typo like --thread or
  // --seed=4 must not silently run the full default grid.  Exits on
  // --help or malformed usage.
  static cli_options parse(int& argc, char** argv) {
    cli_options cli;
    bool audit_given = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto next_value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          std::cerr << flag << " requires a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--threads") {
        cli.threads = std::strtoull(next_value("--threads").c_str(), nullptr, 10);
      } else if (arg == "--seeds") {
        cli.seeds = std::strtoull(next_value("--seeds").c_str(), nullptr, 10);
      } else if (arg == "--json") {
        cli.json_path = next_value("--json");
      } else if (arg == "--trace-out") {
        cli.trace_out = next_value("--trace-out");
      } else if (arg == "--telemetry-out") {
        cli.telemetry_out = next_value("--telemetry-out");
      } else if (arg == "--telemetry-interval") {
        cli.telemetry_interval_ms = static_cast<std::uint32_t>(
            std::strtoul(next_value("--telemetry-interval").c_str(), nullptr,
                         10));
      } else if (arg == "--obs") {
        cli.observe = true;
      } else if (arg == "--progress") {
        cli.progress = true;
      } else if (arg == "--audit") {
        cli.audit = parse_audit_mode(next_value("--audit"), "--audit");
        audit_given = true;
      } else if (arg == "--engine") {
        const std::string value = next_value("--engine");
        const auto kind = analysis::engine_from_string(value);
        if (!kind) {
          std::cerr << "--engine expects scalar|batch|auto, got '" << value
                    << "'\n";
          std::exit(2);
        }
        cli.engine = *kind;
      } else if (arg == "--shard") {
        const std::string value = next_value("--shard");
        const std::size_t slash = value.find('/');
        char* end = nullptr;
        std::uint64_t index = 0, count = 0;
        if (slash != std::string::npos) {
          index = std::strtoull(value.c_str(), &end, 10);
          const bool index_ok = end == value.c_str() + slash;
          count = std::strtoull(value.c_str() + slash + 1, &end, 10);
          const bool count_ok = end == value.c_str() + value.size() &&
                                value.size() > slash + 1;
          if (!index_ok || !count_ok || count < 1 || index >= count) {
            std::cerr << "--shard expects I/N with N >= 1 and I < N, got '"
                      << value << "'\n";
            std::exit(2);
          }
          cli.shard_index = index;
          cli.shard_count = count;
          cli.shard_mode = true;
        } else {
          std::cerr << "--shard expects I/N (e.g. --shard 2/8), got '"
                    << value << "'\n";
          std::exit(2);
        }
      } else if (arg == "--deterministic") {
        cli.deterministic = true;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "usage: bench [--threads N] [--seeds N] [--json PATH] "
                     "[--audit MODE] [--benchmark_*...]\n"
                  << "  --threads N  trial-pool workers (default: hardware; "
                     "results identical for every N)\n"
                  << "  --seeds N    override per-cell trial counts\n"
                  << "  --json PATH  write the BENCH_*.json artifact "
                     "(schema modcon-bench v3)\n"
                  << "  --audit MODE property-audit trials: off|sample|all "
                     "(default: $MODCON_AUDIT or off)\n"
                  << "  --obs        record observability counters; adds the "
                     "schema v3.2 \"obs\" block to --json\n"
                  << "  --trace-out F  write a Perfetto trace_event JSON of "
                     "one trial (requires --threads 1)\n"
                  << "  --telemetry-out F  append live modcon-telemetry v1 "
                     "JSONL snapshots to F\n"
                  << "  --telemetry-interval MS  telemetry snapshot cadence "
                     "(default 1000; 0 = final line only)\n"
                  << "  --progress   live trial progress on stderr\n"
                  << "  --engine E   trial engine: scalar|batch|auto "
                     "(default auto; results byte-identical)\n"
                  << "  --shard I/N  run trial slice I of N and emit the "
                     "mergeable shard artifact (modcon-merge)\n"
                  << "  --deterministic  zero timing measurements in the "
                     "artifact (for byte-for-byte diffs)\n"
                  << "  --benchmark_* forwarded to google-benchmark "
                     "(benches that embed it)\n";
        std::exit(0);
      } else if (arg.rfind("--benchmark_", 0) == 0) {
        argv[out++] = argv[i];  // google-benchmark's; forward untouched
      } else {
        std::cerr << "unknown argument '" << arg
                  << "' (run with --help for usage)\n";
        std::exit(2);
      }
    }
    argc = out;
    if (!audit_given) {
      if (const char* env = std::getenv("MODCON_AUDIT"))
        cli.audit = parse_audit_mode(env, "MODCON_AUDIT");
    }
    // A trace captures one deterministic trial; a multi-threaded trial
    // pool adds nothing to it and suggests the user expected per-thread
    // traces, so refuse rather than surprise.
    if (!cli.trace_out.empty() && cli.threads > 1) {
      std::cerr << "--trace-out records a single trial and requires "
                   "--threads 1 (got --threads "
                << cli.threads << ")\n";
      std::exit(2);
    }
    return cli;
  }
};

// Runs cells, collects summaries and tables, writes the JSON artifact.
class bench_harness {
 public:
  bench_harness(std::string name, int& argc, char** argv)
      : name_(std::move(name)),
        cli_(cli_options::parse(argc, argv)),
        report_(analysis::make_report_skeleton(name_)) {
    report_["threads_requested"] = analysis::json(cli_.threads);
    report_["seeds_override"] = analysis::json(cli_.seeds);
    if (cli_.shard_mode) {
      analysis::json sh = analysis::json::object();
      sh["index"] = analysis::json(cli_.shard_index);
      sh["count"] = analysis::json(cli_.shard_count);
      report_["shard"] = std::move(sh);
    }
    if (!cli_.telemetry_out.empty()) {
      telemetry_bus_ = std::make_unique<obs::telemetry_bus>();
      telemetry_install_.emplace(*telemetry_bus_);
      obs::telemetry_writer_options wo;
      wo.path = cli_.telemetry_out;
      wo.interval_ms = cli_.telemetry_interval_ms;
      wo.source = name_;
      if (cli_.shard_mode) {
        wo.shard_index = cli_.shard_index;
        wo.shard_count = cli_.shard_count;
      }
      telemetry_writer_.emplace(*telemetry_bus_, wo);
      if (!telemetry_writer_->ok()) {
        std::cerr << "cannot write " << cli_.telemetry_out << "\n";
        std::exit(1);
      }
    }
  }

  const cli_options& cli() const { return cli_; }

  // --seeds override with a per-cell default.
  std::size_t trials(std::size_t default_count) const {
    return cli_.seeds ? cli_.seeds : default_count;
  }

  analysis::experiment_options engine_options() const {
    analysis::experiment_options opts;
    opts.threads = cli_.threads;
    opts.progress = cli_.progress;
    opts.engine = cli_.engine;
    return opts;
  }

  // Runs one cell through the engine, applying the CLI overrides, and
  // records its summary in the report.
  analysis::summary_stats run(trial_grid cell) {
    return run(std::move(cell), engine_options());
  }

  // Same, with explicit engine options — for benches that sweep the
  // engine itself (E19 forces scalar/batch and the batch width per
  // cell).  The CLI's shard/deterministic modes still apply.
  analysis::summary_stats run(trial_grid cell,
                              analysis::experiment_options opts) {
    if (cli_.seeds) cell.trials = cli_.seeds;
    apply_audit(cell);
    if (cli_.observe) cell.observe = true;
    if (cli_.shard_mode) return run_sharded(std::move(cell), opts);
    maybe_trace(cell);
    auto s = analysis::run_experiment(cell, opts);
    if (cli_.deterministic) analysis::clear_timing_measurements(s);
    record(s);
    return s;
  }

  // Runs several cells through one shared pool.
  std::vector<analysis::summary_stats> run_grid(std::vector<trial_grid> grid) {
    if (cli_.shard_mode) {
      // Shard artifacts are per-cell (records + meta echo); one cell at a
      // time keeps the record/report plumbing in one place.  Each cell
      // still runs on the full worker pool.
      std::vector<analysis::summary_stats> out;
      out.reserve(grid.size());
      for (auto& cell : grid) out.push_back(run(std::move(cell)));
      return out;
    }
    if (cli_.seeds)
      for (auto& cell : grid) cell.trials = cli_.seeds;
    for (auto& cell : grid) {
      apply_audit(cell);
      if (cli_.observe) cell.observe = true;
    }
    if (!grid.empty()) maybe_trace(grid.front());
    auto out = analysis::run_experiment_grid(grid, engine_options());
    if (cli_.deterministic)
      for (auto& s : out) analysis::clear_timing_measurements(s);
    for (const auto& s : out) record(s);
    return out;
  }

  // Runs a multi-shot grid (analysis/multi.h) through one shared pool,
  // with the same CLI overrides as run_grid.  --trace-out does not apply
  // here: a multi trial is not a single-object replay.
  std::vector<analysis::summary_stats> run_multi(
      std::vector<analysis::multi_grid> grid) {
    // Multi-shot trials carry per-slot accounting that cannot be merged
    // from trial records: shard 0 runs them whole, the rest skip.
    if (cli_.shard_mode && cli_.shard_index != 0) {
      std::vector<analysis::summary_stats> out(grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i)
        out[i].label = grid[i].label;
      return out;
    }
    for (auto& cell : grid) {
      if (cli_.seeds) cell.trials = cli_.seeds;
      apply_audit_mode(cell.audit);
      if (cli_.observe) cell.observe = true;
    }
    auto out = analysis::run_multi_grid(grid, engine_options());
    if (cli_.deterministic)
      for (auto& s : out) analysis::clear_timing_measurements(s);
    for (const auto& s : out) record(s);
    return out;
  }

  // Prints the table (and the MODCON_CSV_DIR mirror) and records it.
  void emit(const table& t, const std::string& title,
            const std::string& slug) {
    t.emit(title, slug);
    // Tables aggregate whatever slice this process ran; recording them in
    // a shard artifact would leak the slice into the merged document
    // (which must match the --shard 0/1 reference byte for byte).
    if (cli_.shard_mode) return;
    analysis::json jt = analysis::json::object();
    jt["title"] = analysis::json(title);
    jt["slug"] = analysis::json(slug);
    analysis::json headers = analysis::json::array();
    for (const auto& h : t.headers()) headers.push_back(analysis::json(h));
    jt["headers"] = std::move(headers);
    analysis::json rows = analysis::json::array();
    for (const auto& row : t.data()) {
      analysis::json jr = analysis::json::array();
      for (const auto& c : row) jr.push_back(analysis::json(c));
      rows.push_back(std::move(jr));
    }
    jt["rows"] = std::move(rows);
    report_["tables"].push_back(std::move(jt));
  }

  // Writes the artifact if --json was given.  Returns the process exit
  // code so main can `return harness.finish();` — nonzero when any
  // audited trial violated a checked property, which is what lets
  // `MODCON_AUDIT=1 ctest` enforce audit cleanliness through the
  // bench-smoke tests.
  int finish() {
    int rc = 0;
    if (!cli_.json_path.empty()) {
      std::ofstream out(cli_.json_path);
      if (!out) {
        std::cerr << "cannot write " << cli_.json_path << "\n";
        return 1;
      }
      out << report_.dump(2) << "\n";
      std::cout << "wrote " << cli_.json_path << "\n";
      if (!out) rc = 1;
    }
    if (audit_violations_ > 0) {
      std::cerr << "AUDIT: " << audit_violations_
                << " trial(s) violated checked properties (see above)\n";
      rc = 1;
    }
    if (telemetry_writer_) {
      telemetry_writer_->close();
      std::cout << "wrote " << cli_.telemetry_out << " (telemetry)\n";
    }
    return rc;
  }

  analysis::json& report() { return report_; }

 private:
  // --trace-out: replay trial 0 of the first cell this harness sees with
  // the full span tree retained, and export it as Chrome/Perfetto
  // trace_event JSON (chrome://tracing or https://ui.perfetto.dev).
  void maybe_trace(const trial_grid& cell) {
    if (cli_.trace_out.empty() || traced_) return;
    traced_ = true;
    auto rec = analysis::run_traced_trial(cell, 0);
    if (!rec.result.obs) {
      std::cerr << "--trace-out: trial produced no observation record\n";
      std::exit(1);
    }
    std::ofstream out(cli_.trace_out);
    if (!out) {
      std::cerr << "cannot write " << cli_.trace_out << "\n";
      std::exit(1);
    }
    obs::perfetto_meta meta;
    meta.label = cell.label;
    meta.backend = "sim";
    meta.seed = rec.seed;
    meta.n = cell.n;
    meta.steps = rec.result.steps;
    obs::write_perfetto(out, *rec.result.obs, meta);
    if (!out) {
      std::cerr << "error writing " << cli_.trace_out << "\n";
      std::exit(1);
    }
    std::cout << "wrote " << cli_.trace_out << " (trace of '" << cell.label
              << "' trial 0, seed " << rec.seed << ", "
              << rec.result.obs->span_count << " spans)\n";
  }

  // A cell can be sharded iff its summary is a pure function of its
  // per-trial records: no audit reports, probe columns, or observability
  // counters (faulted cells qualify — fault accounting is per-record).
  bool shardable(const trial_grid& cell) const {
    return cell.audit.mode == analysis::audit_mode::off &&
           cell.probes.empty() && !cell.observe;
  }

  analysis::summary_stats run_sharded(trial_grid cell,
                                      analysis::experiment_options opts) {
    if (!shardable(cell)) {
      // Not mergeable from records: shard 0 runs the whole cell (the
      // merge copies it verbatim), the other shards skip it.
      if (cli_.shard_index != 0) {
        analysis::summary_stats s;
        s.label = cell.label;
        return s;
      }
      maybe_trace(cell);
      auto s = analysis::run_experiment(cell, opts);
      if (cli_.deterministic) analysis::clear_timing_measurements(s);
      record(s);
      return s;
    }
    // The shard artifact ships every per-trial record; the merge rebuilds
    // the cell from the union of those, so keep_records is forced on.
    cell.keep_records = true;
    opts.shard_index = cli_.shard_index;
    opts.shard_count = cli_.shard_count;
    if (cli_.shard_index == 0) maybe_trace(cell);
    auto s = analysis::run_experiment(cell, opts);
    if (cli_.deterministic) analysis::clear_timing_measurements(s);
    report_["experiments"].push_back(
        analysis::shard_cell_to_json(s, analysis::meta_of(cell)));
    return s;
  }

  void apply_audit(trial_grid& cell) { apply_audit_mode(cell.audit); }

  void apply_audit_mode(analysis::audit_plan& plan) {
    // The CLI/env mode overrides an un-audited cell; a cell that already
    // declares an audit plan (mode != off) keeps its own.
    if (cli_.audit == analysis::audit_mode::off ||
        plan.mode != analysis::audit_mode::off)
      return;
    plan.mode = cli_.audit;
  }

  void record(const analysis::summary_stats& s) {
    if (s.audited > 0) {
      std::cout << "audit[" << s.label << "]: " << s.audited << " audited, "
                << s.audit_clean << " clean, " << s.audit_violated
                << " violated, " << s.audit_inconclusive
                << " inconclusive\n";
      for (const auto& ex : s.audit_examples)
        std::cerr << "  violation (trial " << ex.trial_index << ", seed "
                  << ex.seed << "): " << ex.v << "\n";
      audit_violations_ += s.audit_violated;
    }
    report_["experiments"].push_back(analysis::to_json(s));
  }

  std::string name_;
  cli_options cli_;
  analysis::json report_;
  std::size_t audit_violations_ = 0;
  bool traced_ = false;
  // Declaration order matters: the writer is destroyed first (emitting the
  // final cumulative line while the bus is still installed), then the
  // install is torn down, then the bus itself.
  std::unique_ptr<obs::telemetry_bus> telemetry_bus_;
  std::optional<obs::telemetry_install> telemetry_install_;
  std::optional<obs::telemetry_writer> telemetry_writer_;
};

// Factory helpers for the adversaries every bench sweeps.
inline adversary_factory random_scheduler() {
  return [] { return std::make_unique<sim::random_oblivious>(); };
}

// Trial budget that shrinks with n so sweeps stay laptop-friendly.
inline std::size_t trials_for(std::size_t n, std::size_t budget = 400'000) {
  std::size_t t = budget / (n ? n : 1);
  if (t < 40) t = 40;
  if (t > 3000) t = 3000;
  return t;
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "\n##### " << title << " #####\n" << claim << "\n";
}

}  // namespace modcon::bench
