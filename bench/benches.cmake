# Declares one binary per experiment (see DESIGN.md §4).  Included from
# the top-level CMakeLists so the executables are the only files placed in
# ${CMAKE_BINARY_DIR}/bench.
set(MODCON_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

function(modcon_bench name)
  add_executable(${name} ${MODCON_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE modcon)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

modcon_bench(bench_e1_conciliator)
modcon_bench(bench_e2_binary_consensus)
modcon_bench(bench_e3_mvalued_consensus)
modcon_bench(bench_e4_ratifier_space)
modcon_bench(bench_e5_adversary_ablation)
modcon_bench(bench_e6_coin_conciliator)
modcon_bench(bench_e7_ratifier_only)
modcon_bench(bench_e8_fastpath_bounded)
modcon_bench(bench_e9_baselines)
modcon_bench(bench_e10_termination_tail)
modcon_bench(bench_e11_rt_threads)
modcon_bench(bench_e12_impatience_ablation)
modcon_bench(bench_e13_exact_game)
modcon_bench(bench_e14_harness_scale)
modcon_bench(bench_e15_fault_matrix)
modcon_bench(bench_e16_engine_micro)
modcon_bench(bench_e17_multi_shot)
modcon_bench(bench_e18_survivability)
modcon_bench(bench_e19_batch_scaling)
target_link_libraries(bench_e11_rt_threads PRIVATE benchmark::benchmark)

# Smoke tests: every bench runs end-to-end (tiny trial counts, 2 worker
# threads, JSON artifact exercised) under `ctest -L bench-smoke`.
function(modcon_bench_smoke name)
  add_test(NAME smoke_${name}
    COMMAND ${name} --seeds 2 --threads 2
            --json ${CMAKE_BINARY_DIR}/bench/SMOKE_${name}.json ${ARGN})
  set_tests_properties(smoke_${name} PROPERTIES LABELS bench-smoke)
endfunction()

modcon_bench_smoke(bench_e1_conciliator)
modcon_bench_smoke(bench_e2_binary_consensus)
modcon_bench_smoke(bench_e3_mvalued_consensus)
modcon_bench_smoke(bench_e4_ratifier_space)
modcon_bench_smoke(bench_e5_adversary_ablation)
modcon_bench_smoke(bench_e6_coin_conciliator)
modcon_bench_smoke(bench_e7_ratifier_only)
modcon_bench_smoke(bench_e8_fastpath_bounded)
modcon_bench_smoke(bench_e9_baselines)
modcon_bench_smoke(bench_e10_termination_tail)
# Skip the throughput loops; the summary table still runs.
modcon_bench_smoke(bench_e11_rt_threads --benchmark_filter=NONE)
modcon_bench_smoke(bench_e12_impatience_ablation)
modcon_bench_smoke(bench_e13_exact_game)
modcon_bench_smoke(bench_e14_harness_scale)
modcon_bench_smoke(bench_e15_fault_matrix)
modcon_bench_smoke(bench_e16_engine_micro)
modcon_bench_smoke(bench_e17_multi_shot)
modcon_bench_smoke(bench_e18_survivability)
modcon_bench_smoke(bench_e19_batch_scaling)
