// E11 — real-thread validation and throughput.
//
// The simulator realizes the paper's model exactly; this bench shows the
// same coroutine algorithms are real wait-free register programs: run the
// consensus stacks on OS threads over std::atomic registers, check
// agreement/validity on every trial, report operation counts (same order
// of magnitude as the sim) and wall-clock throughput via
// google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <set>

#include "core/modcon.h"
#include "rt/runner.h"
#include "util/table.h"

namespace {

using namespace modcon;
using rt::arena;
using rt::rt_env;
using rt::run_threads;

std::uint64_t g_seed = 1;

void consensus_once(std::size_t n, bool bounded, std::uint64_t seed,
                    std::uint64_t* total_ops, std::uint64_t* max_ops) {
  arena mem;
  std::unique_ptr<deciding_object<rt_env>> obj;
  if (bounded)
    obj = make_bounded_impatient_consensus<rt_env>(mem, make_binary_quorums(),
                                                   n);
  else
    obj = make_impatient_consensus<rt_env>(mem, make_binary_quorums());
  auto res = run_threads(mem, n, seed, [&](rt_env& env) {
    return invoke_encoded(*obj, env, env.pid() % 2);
  });
  std::set<word> values;
  for (word w : res.outputs) {
    decided d = decode_decided(w);
    if (!d.decide) throw invariant_error("rt process did not decide");
    values.insert(d.value);
  }
  if (values.size() != 1) throw invariant_error("rt disagreement!");
  if (*values.begin() > 1) throw invariant_error("rt validity violation!");
  if (total_ops) *total_ops = res.total_ops;
  if (max_ops) *max_ops = res.max_individual_ops;
}

void summary_table() {
  table t({"n", "trials", "agree_violations", "total_ops_mean",
           "indiv_ops_mean"});
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const std::size_t trials = 60;
    double total_sum = 0, max_sum = 0;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      std::uint64_t tot = 0, mx = 0;
      consensus_once(n, false, seed, &tot, &mx);  // throws on violation
      total_sum += static_cast<double>(tot);
      max_sum += static_cast<double>(mx);
    }
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(std::uint64_t{0})
        .cell(total_sum / trials, 1)
        .cell(max_sum / trials, 1);
  }
  t.emit("E11: real-thread consensus — correctness and operation counts",
         "e11_rt");
}

void bm_consensus(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    consensus_once(n, false, g_seed++, nullptr, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_consensus)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void bm_bounded_consensus(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    consensus_once(n, true, g_seed++, nullptr, nullptr);
  }
}
BENCHMARK(bm_bounded_consensus)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n##### E11: real-thread backend validation #####\n";
  summary_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
