// E11 — real-thread validation and throughput.
//
// The simulator realizes the paper's model exactly; this bench shows the
// same coroutine algorithms are real wait-free register programs: run the
// consensus stacks on OS threads over std::atomic registers, check
// agreement/validity on every trial, report operation counts (same order
// of magnitude as the sim) and wall-clock throughput via
// google-benchmark.  Leftover CLI args (after --threads/--seeds/--json)
// are forwarded to benchmark::Initialize.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "core/modcon.h"
#include "rt/runner.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using rt::rt_env;

// One spec serves both backends; E11 instantiates it for rt_env (the sim
// benches resolve the same registry entries with sim_env).
template <typename Env>
analysis::object_builder<Env> stack(bool bounded) {
  return stack_builder<Env>(stack_for(bounded ? "bounded" : "impatient"));
}

analysis::trial_result consensus_once(std::size_t n, bool bounded,
                                      std::uint64_t seed) {
  auto inputs =
      analysis::make_inputs(analysis::input_pattern::alternating, n, 2, seed);
  auto res = analysis::run_rt_object_trial(stack<rt_env>(bounded), inputs,
                                           {.seed = seed});
  for (const decided& d : res.outputs)
    if (!d.decide) throw invariant_error("rt process did not decide");
  if (!res.agreement()) throw invariant_error("rt disagreement!");
  if (!res.valid(inputs)) throw invariant_error("rt validity violation!");
  return res;
}

void summary_table(bench_harness& h) {
  table t({"n", "trials", "agree_violations", "total_ops_mean",
           "indiv_ops_mean"});
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const std::size_t trials = h.trials(60);
    double total_sum = 0, max_sum = 0;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      auto res = consensus_once(n, false, seed);  // throws on violation
      total_sum += static_cast<double>(res.total_ops);
      max_sum += static_cast<double>(res.max_individual_ops);
    }
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(std::uint64_t{0})
        .cell(total_sum / trials, 1)
        .cell(max_sum / trials, 1);
  }
  h.emit(t, "E11: real-thread consensus — correctness and operation counts",
         "e11_rt");
}

std::uint64_t g_seed = 1;

void bm_consensus(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    consensus_once(n, false, g_seed++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_consensus)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void bm_bounded_consensus(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    consensus_once(n, true, g_seed++);
  }
}
BENCHMARK(bm_bounded_consensus)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // The harness consumes --threads/--seeds/--json and compacts argv;
  // whatever remains (e.g. --benchmark_filter=...) goes to gbench.
  bench_harness h("e11_rt_threads", argc, argv);
  print_header("E11: real-thread backend validation",
               "same coroutine objects, std::atomic registers, OS "
               "scheduling; agreement/validity asserted per trial");
  summary_table(h);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return h.finish();
}
