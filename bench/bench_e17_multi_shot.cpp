// E17 — multi-shot consensus: slot logs of one-shot objects (multi/).
//
// The paper builds *one-shot* deciding objects; real systems decide a
// sequence.  This bench measures the slot-log construction that hosts a
// fresh registry stack per slot, drawn from an arena-backed object pool
// that reclaims the decided prefix behind per-process watermarks:
//
//   * E17a (sim, in the JSON artifact): a (stack x n) grid at K = 4
//     shards — proposals, fast-path rate, slots reclaimed, pool extent
//     reuse, and per-proposal op distributions.  Every column is a
//     deterministic function of (cell, seed), so the artifact stays
//     byte-identical across --threads; scripts/compare_bench.py gates CI
//     on the slot_ops_p50 of these cells vs BENCH_baseline.json.
//   * E17b (sim): the same grid under E15-style process faults — the
//     per-slot invariants (agreement, validity, prefix) must hold under
//     crashes and restarts, and the auditor can be armed with --audit.
//   * E17c (rt, stdout only): sustained decision throughput on real
//     threads across K >= 4 shards — wall-clock decisions/sec and the
//     per-proposal op tail.  Wall-clock numbers are scheduling noise by
//     definition, so this table is printed but kept out of the artifact.
#include <chrono>
#include <memory>
#include <string>

#include "common.h"
#include "core/consensus/stack_spec.h"

namespace {

using namespace modcon;
using namespace modcon::bench;

constexpr std::uint64_t kShards = 4;
constexpr std::uint64_t kSlots = 16;

void sim_grid_table(bench_harness& h) {
  const std::vector<const char*> stacks = {"impatient", "bounded"};
  const std::vector<std::size_t> ns = {2, 4, 8, 16};
  std::vector<analysis::multi_grid> grid;
  for (const char* s : stacks)
    for (std::size_t n : ns)
      grid.push_back({
          .label = std::string("e17_multi/") + s + "/n=" + std::to_string(n),
          .spec = stack_for(s),
          .n = n,
          .shards = kShards,
          .slots = kSlots,
          .trials = h.trials(40),
          .limits = {.max_steps = 50'000'000},
      });
  auto summaries = h.run_multi(std::move(grid));

  table t({"stack", "n", "shards", "slots", "trials", "proposals",
           "fastpath_rate", "reclaimed", "ext_reused", "slot_ops_p50",
           "slot_ops_p99", "agree", "valid"});
  std::size_t i = 0;
  for (const char* s : stacks)
    for (std::size_t n : ns) {
      const auto& sum = summaries[i++];
      double fast =
          sum.multi.proposals
              ? static_cast<double>(sum.multi.fast_path_hits) /
                    static_cast<double>(sum.multi.proposals)
              : 0.0;
      t.row()
          .cell(s)
          .cell(static_cast<std::uint64_t>(n))
          .cell(sum.multi.shards)
          .cell(sum.multi.slots_per_shard)
          .cell(static_cast<std::uint64_t>(sum.trials))
          .cell(sum.multi.proposals)
          .cell(fast, 3)
          .cell(sum.multi.slots_reclaimed)
          .cell(sum.multi.extents_reused)
          .cell(sum.multi.slot_ops.p50, 1)
          .cell(sum.multi.slot_ops.p99, 1)
          .cell(static_cast<std::uint64_t>(sum.multi.slots_agreed))
          .cell(static_cast<std::uint64_t>(sum.multi.slots_valid));
    }
  h.emit(t,
         "E17a: multi-shot slot logs, sim backend (K=4 shards; fast path, "
         "reclamation, pool reuse)",
         "e17_multi");
}

void faulted_table(bench_harness& h) {
  const std::size_t n = 8;
  struct mode {
    const char* name;
    analysis::fault_plan faults;
  };
  const mode modes[] = {
      {"none", {}},
      {"crash2", analysis::fault_plan{}.crash(1, 40).crash(3, 90)},
      {"restart2", analysis::fault_plan{}.restart(0, 30).restart(5, 70)},
  };
  std::vector<analysis::multi_grid> grid;
  for (const auto& m : modes)
    grid.push_back({
        .label = std::string("e17_faults/") + m.name,
        .spec = stack_for("impatient"),
        .n = n,
        .shards = kShards,
        .slots = kSlots,
        .trials = h.trials(40),
        .limits = {.max_steps = 50'000'000},
        .faults = m.faults,
    });
  auto summaries = h.run_multi(std::move(grid));

  table t({"faults", "trials", "done", "agree", "valid", "crashed",
           "restarts", "reclaimed"});
  std::size_t i = 0;
  for (const auto& m : modes) {
    const auto& sum = summaries[i++];
    t.row()
        .cell(m.name)
        .cell(static_cast<std::uint64_t>(sum.trials))
        .cell(static_cast<std::uint64_t>(sum.completed))
        .cell(static_cast<std::uint64_t>(sum.multi.slots_agreed))
        .cell(static_cast<std::uint64_t>(sum.multi.slots_valid))
        .cell(static_cast<std::uint64_t>(sum.crashed_processes))
        .cell(sum.restarts)
        .cell(sum.multi.slots_reclaimed);
  }
  h.emit(t,
         "E17b: per-slot invariants under process faults (crashed "
         "proposals land on the pin fast path)",
         "e17_faults");
}

void rt_throughput_table(bench_harness& h) {
  const std::size_t n = 4;
  const std::uint64_t slots = 64;
  const std::vector<std::uint64_t> shard_counts = {4, 8};
  const std::size_t trials = h.trials(5);

  table t({"shards", "n", "slots", "trials", "decisions/s", "proposals/s",
           "slot_ops_p99", "agree"});
  for (std::uint64_t shards : shard_counts) {
    analysis::multi_grid cell{
        .label = "e17_rt/shards=" + std::to_string(shards),
        .spec = stack_for("impatient"),
        .n = n,
        .shards = shards,
        .slots = slots,
    };
    double wall_sec = 0.0;
    std::uint64_t agree = 0;
    std::vector<double> slot_ops;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      analysis::multi_trial_options opts;
      opts.seed = analysis::derive_trial_seed(17, trial);
      auto t0 = std::chrono::steady_clock::now();
      auto res = analysis::run_rt_multi_trial(cell, opts);
      wall_sec += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      agree += res.slots_agree && res.slots_valid;
      slot_ops.insert(slot_ops.end(), res.slot_ops.begin(),
                      res.slot_ops.end());
    }
    const double decided = static_cast<double>(trials * shards * slots);
    auto dist = analysis::dist_summary::of(slot_ops);
    t.row()
        .cell(shards)
        .cell(static_cast<std::uint64_t>(n))
        .cell(slots)
        .cell(static_cast<std::uint64_t>(trials))
        .cell(wall_sec > 0 ? decided / wall_sec : 0.0, 0)
        .cell(wall_sec > 0 ? decided * n / wall_sec : 0.0, 0)
        .cell(dist.p99, 1)
        .cell(agree);
  }
  // Printed only — wall-clock throughput would break the artifact's
  // byte-identity contract, so it stays out of the JSON report.
  t.emit(
      "E17c: rt sustained decision throughput (wall clock; stdout only)",
      "e17_rt");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e17_multi_shot", argc, argv);
  print_header(
      "E17: multi-shot slot logs over one-shot consensus",
      "a fresh registry stack per slot from a reclaiming object pool; "
      "per-slot agreement/validity always checked, decided prefix "
      "reclaimed behind the watermark frontier");
  sim_grid_table(h);
  faulted_table(h);
  rt_throughput_table(h);
  return h.finish();
}
