// E16 — Engine microbenchmark: trial-engine throughput, not a paper claim.
//
// Every other bench measures the *protocols*; this one measures the
// *harness* that runs them — the sim trial engine's steps/sec on the two
// workloads the paper's experiments spend nearly all their time in:
//
//   * E1-style grids: the impatient first-mover conciliator (short
//     trials, spawn/teardown dominated — exercises world setup and the
//     scheduler fast path);
//   * E2-style grids: the full unbounded consensus stack (longer trials,
//     step-loop dominated — exercises register ops and adversary picks);
//   * a faulted cell (E15-style crash/restart + regular registers), so
//     the fault-point checks on the step path stay visible.
//
// The numbers come from the engine's own per-phase perf counters
// (analysis/perf.h, schema v3.1): steps/sec is per completed trial,
// steps / step-phase-seconds, so setup and reduction cannot flatter the
// step loop.  scripts/compare_bench.py gates CI on the p50 column of
// this bench's JSON artifact against the committed BENCH_baseline.json.
#include <memory>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder consensus_stack() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e16_engine_micro", argc, argv);
  print_header("E16: trial-engine throughput (steps/sec, perf phases)",
               "engine microbenchmark — no paper claim; CI gates on the "
               "steps_per_sec_p50 of these cells vs BENCH_baseline.json");

  std::vector<trial_grid> grid;
  for (std::size_t n : {16u, 64u, 256u}) {
    grid.push_back({
        .label = "e16_conciliator/n=" + std::to_string(n),
        .build = impatient(),
        .n = n,
        .trials = h.trials(trials_for(n, 400'000)),
        .batch_hint = analysis::batch_impatient(),
    });
  }
  for (std::size_t n : {16u, 64u, 256u}) {
    grid.push_back({
        .label = "e16_consensus/n=" + std::to_string(n),
        .build = consensus_stack(),
        .n = n,
        .trials = h.trials(trials_for(n, 200'000)),
        .batch_hint = analysis::batch_for(stack_for("impatient")),
    });
  }
  // The hint is honest here too, but the fault plan disqualifies the cell
  // (batch_supported), so both engines run it through the scalar oracle —
  // keeping a scalar-fallback workload in the gated artifact.
  grid.push_back({
      .label = "e16_faulted/n=64",
      .build = consensus_stack(),
      .n = 64,
      .trials = h.trials(1000),
      .faults = analysis::fault_plan{}
                    .crash(1, 12)
                    .restart(0, 8)
                    .regular_registers(8),
      .batch_hint = analysis::batch_for(stack_for("impatient")),
  });
  auto summaries = h.run_grid(std::move(grid));

  table t({"cell", "trials", "steps_mean", "sched_ms", "step_ms", "audit_ms",
           "Msteps/s_p50", "Msteps/s_mean"});
  for (const auto& s : summaries) {
    t.row()
        .cell(s.label)
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.steps.mean, 1)
        .cell(s.perf.ms(analysis::perf_phase::schedule), 1)
        .cell(s.perf.ms(analysis::perf_phase::step), 1)
        .cell(s.perf.ms(analysis::perf_phase::audit), 1)
        .cell(s.steps_per_sec.p50 / 1e6, 3)
        .cell(s.steps_per_sec.mean / 1e6, 3);
  }
  h.emit(t, "E16: sim trial-engine throughput by workload", "e16_engine");
  return h.finish();
}
