// E6 — Theorem 6: conciliators from weak shared coins.
//
// Paper claims: given a weak shared coin with agreement parameter δ,
// Procedure CoinConciliator is a binary conciliator with agreement
// probability >= δ, costing the coin plus 2 registers and 2 operations.
//
// Reproduced: measure the voting coin's one-sided agreement parameter
// δ_coin = min(Pr[all 0], Pr[all 1]) and the derived conciliator's
// agreement frequency; the latter must be >= the former.  Also verify the
// +2-operation overhead on the path that skips the coin, and contrast the
// coin-based conciliator's Θ(n²⁺)-total-work shape with the
// probabilistic-write conciliator (why §5.2 is the better choice in this
// model).
#include <memory>

#include "common.h"
#include "coin/firstmover_coin.h"
#include "coin/voting_coin.h"
#include "core/conciliator/coin_conciliator.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

class coin_as_object final : public deciding_object<sim_env> {
 public:
  explicit coin_as_object(std::unique_ptr<shared_coin<sim_env>> coin)
      : coin_(std::move(coin)) {}
  proc<decided> invoke(sim_env& env, value_t) override {
    value_t b = co_await coin_->toss(env);
    co_return decided{false, b};
  }
  std::string name() const override { return coin_->name(); }

 private:
  std::unique_ptr<shared_coin<sim_env>> coin_;
};

analysis::sim_object_builder coin_only() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_as_object>(
        std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

analysis::sim_object_builder conciliator() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder firstmover_conciliator() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<firstmover_coin<sim_env>>(mem));
  };
}

}  // namespace

int main() {
  print_header("E6: CoinConciliator from the voting shared coin (Theorem 6)",
               "claims: conciliator agreement >= coin delta; overhead = 2 "
               "registers + 2 ops; coin cost dominates");
  table t({"n", "trials", "coin_delta_min_side", "conc_agree", "holds",
           "coin_total_ops", "conc_total_ops", "impatient_total_ops"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const std::size_t trials = n <= 8 ? 400 : 150;

    // Coin alone: measure min(Pr[all 0], Pr[all 1]).
    std::size_t all0 = 0, all1 = 0;
    running_stats coin_ops;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      sim::random_oblivious adv;
      analysis::trial_options opts;
      opts.seed = seed;
      auto res = analysis::run_object_trial(
          coin_only(),
          analysis::make_inputs(analysis::input_pattern::unanimous, n, 2,
                                seed),
          adv, opts);
      if (!res.completed()) continue;
      coin_ops.add(static_cast<double>(res.total_ops));
      bool a0 = true, a1 = true;
      for (const auto& d : res.outputs) {
        a0 &= d.value == 0;
        a1 &= d.value == 1;
      }
      all0 += a0;
      all1 += a1;
    }
    double delta = std::min(all0, all1) / static_cast<double>(trials);

    auto conc = run_trials(conciliator(), analysis::input_pattern::half_half,
                           n, 2, [] { return std::make_unique<sim::random_oblivious>(); },
                           trials);
    auto imp = run_trials(impatient(), analysis::input_pattern::half_half, n,
                          2, [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(delta, 3)
        .cell(conc.agreement_rate(), 3)
        .cell(conc.agreement_rate() >= delta - 0.08 ? "yes" : "NO")
        .cell(coin_ops.mean(), 0)
        .cell(conc.total_ops.mean(), 0)
        .cell(imp.total_ops.mean(), 0);
  }
  t.emit("E6a: coin-based vs probabilistic-write conciliators", "e6_coin");

  // A second coin: the 3-op first-mover coin.  It is not unpredictable
  // against a location-oblivious adversary (it sees the flips in
  // flight), but CoinConciliator never needed unpredictability — only
  // agreement probability — so it still conciliates, at a fraction of
  // the voting coin's cost.
  table t2({"n", "trials", "agree", "total_ops_mean"});
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    const std::size_t trials = 600;
    auto agg = run_trials(firstmover_conciliator(),
                          analysis::input_pattern::half_half, n, 2,
                          [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    t2.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(agg.agreement_rate(), 3)
        .cell(agg.total_ops.mean(), 1);
  }
  t2.emit("E6b: conciliator from the 3-op first-mover coin", "e6_firstmover");

  // Ablation of the voting coin's two knobs: the decision threshold
  // (T·n total votes) trades cost (Θ(T²n²) votes) for agreement margin;
  // the collect period trades per-vote overhead (n reads per collect)
  // for staleness (hidden votes ~ period·n erode the margin).
  table t3({"threshold_T", "period", "n", "trials", "agree",
            "total_ops_mean"});
  for (unsigned threshold : {1u, 2u, 4u, 8u}) {
    for (unsigned period : {1u, 2u, 8u}) {
      const std::size_t n = 8;
      const std::size_t trials = 200;
      auto cb = [threshold, period](address_space& mem, std::size_t nn)
          -> std::unique_ptr<deciding_object<sim_env>> {
        return std::make_unique<coin_conciliator<sim_env>>(
            mem, std::make_unique<voting_coin<sim_env>>(mem, nn, threshold,
                                                        period));
      };
      auto agg = run_trials(cb, analysis::input_pattern::half_half, n, 2,
                            [] { return std::make_unique<sim::random_oblivious>(); },
                            trials);
      t3.row()
          .cell(static_cast<std::uint64_t>(threshold))
          .cell(static_cast<std::uint64_t>(period))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(trials))
          .cell(agg.agreement_rate(), 3)
          .cell(agg.total_ops.mean(), 0);
    }
  }
  t3.emit("E6c: voting-coin threshold/period ablation", "e6_voting_ablation");
  return 0;
}
