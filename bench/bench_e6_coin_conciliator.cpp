// E6 — Theorem 6: conciliators from weak shared coins.
//
// Paper claims: given a weak shared coin with agreement parameter δ,
// Procedure CoinConciliator is a binary conciliator with agreement
// probability >= δ, costing the coin plus 2 registers and 2 operations.
//
// Reproduced: measure the voting coin's one-sided agreement parameter
// δ_coin = min(Pr[all 0], Pr[all 1]) and the derived conciliator's
// agreement frequency; the latter must be >= the former.  Also verify the
// +2-operation overhead on the path that skips the coin, and contrast the
// coin-based conciliator's Θ(n²⁺)-total-work shape with the
// probabilistic-write conciliator (why §5.2 is the better choice in this
// model).
#include <memory>

#include "common.h"
#include "coin/firstmover_coin.h"
#include "coin/voting_coin.h"
#include "core/conciliator/coin_conciliator.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

class coin_as_object final : public deciding_object<sim_env> {
 public:
  explicit coin_as_object(std::unique_ptr<shared_coin<sim_env>> coin)
      : coin_(std::move(coin)) {}
  proc<decided> invoke(sim_env& env, value_t) override {
    value_t b = co_await coin_->toss(env);
    co_return decided{false, b};
  }
  std::string name() const override { return coin_->name(); }

 private:
  std::unique_ptr<shared_coin<sim_env>> coin_;
};

analysis::sim_object_builder coin_only() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_as_object>(
        std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

analysis::sim_object_builder conciliator() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<voting_coin<sim_env>>(mem, n));
  };
}

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

analysis::sim_object_builder firstmover_conciliator() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<firstmover_coin<sim_env>>(mem));
  };
}

void coin_vs_impatient(bench_harness& h) {
  const std::vector<std::size_t> ns = {2, 4, 8, 16, 32};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    const std::size_t trials = h.trials(n <= 8 ? 400 : 150);
    grid.push_back({
        .label = "e6_coin/coin-only/n=" + std::to_string(n),
        .build = coin_only(),
        .pattern = analysis::input_pattern::unanimous,
        .n = n,
        .trials = trials,
        // A bare shared coin is not a deciding object: its output is a
        // coin flip, not a proposal, so only legality checks apply.
        .audit = {.deciding = false},
        .keep_records = true,
    });
    grid.push_back({
        .label = "e6_coin/conciliator/n=" + std::to_string(n),
        .build = conciliator(),
        .n = n,
        .trials = trials,
    });
    grid.push_back({
        .label = "e6_coin/impatient/n=" + std::to_string(n),
        .build = impatient(),
        .n = n,
        .trials = trials,
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "coin_delta_min_side", "conc_agree", "holds",
           "coin_total_ops", "conc_total_ops", "impatient_total_ops"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto& coin = summaries[3 * i];
    const auto& conc = summaries[3 * i + 1];
    const auto& imp = summaries[3 * i + 2];
    // Coin alone: min(Pr[all 0], Pr[all 1]) from the per-trial records.
    std::size_t all0 = 0, all1 = 0;
    for (const auto& rec : coin.records) {
      if (!rec.result.completed()) continue;
      bool a0 = true, a1 = true;
      for (const auto& d : rec.result.outputs) {
        a0 &= d.value == 0;
        a1 &= d.value == 1;
      }
      all0 += a0;
      all1 += a1;
    }
    double delta =
        std::min(all0, all1) / static_cast<double>(coin.trials);
    t.row()
        .cell(static_cast<std::uint64_t>(ns[i]))
        .cell(static_cast<std::uint64_t>(coin.trials))
        .cell(delta, 3)
        .cell(conc.agreement_rate(), 3)
        .cell(conc.agreement_rate() >= delta - 0.08 ? "yes" : "NO")
        .cell(coin.total_ops.mean, 0)
        .cell(conc.total_ops.mean, 0)
        .cell(imp.total_ops.mean, 0);
  }
  h.emit(t, "E6a: coin-based vs probabilistic-write conciliators", "e6_coin");
}

void firstmover_table(bench_harness& h) {
  // A second coin: the 3-op first-mover coin.  It is not unpredictable
  // against a location-oblivious adversary (it sees the flips in
  // flight), but CoinConciliator never needed unpredictability — only
  // agreement probability — so it still conciliates, at a fraction of
  // the voting coin's cost.
  const std::vector<std::size_t> ns = {2, 8, 32, 128};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e6_firstmover/n=" + std::to_string(n),
        .build = firstmover_conciliator(),
        .n = n,
        .trials = h.trials(600),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "agree", "total_ops_mean"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto& s = summaries[i];
    t.row()
        .cell(static_cast<std::uint64_t>(ns[i]))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.agreement_rate(), 3)
        .cell(s.total_ops.mean, 1);
  }
  h.emit(t, "E6b: conciliator from the 3-op first-mover coin",
         "e6_firstmover");
}

void voting_ablation(bench_harness& h) {
  // Ablation of the voting coin's two knobs: the decision threshold
  // (T·n total votes) trades cost (Θ(T²n²) votes) for agreement margin;
  // the collect period trades per-vote overhead (n reads per collect)
  // for staleness (hidden votes ~ period·n erode the margin).
  const std::vector<unsigned> thresholds = {1, 2, 4, 8};
  const std::vector<unsigned> periods = {1, 2, 8};
  const std::size_t n = 8;
  std::vector<trial_grid> grid;
  for (unsigned threshold : thresholds) {
    for (unsigned period : periods) {
      grid.push_back({
          .label = "e6_voting/T=" + std::to_string(threshold) +
                   "/period=" + std::to_string(period),
          .build = [threshold, period](address_space& mem, std::size_t nn)
              -> std::unique_ptr<deciding_object<sim_env>> {
            return std::make_unique<coin_conciliator<sim_env>>(
                mem, std::make_unique<voting_coin<sim_env>>(
                         mem, nn, threshold, period));
          },
          .n = n,
          .trials = h.trials(200),
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"threshold_T", "period", "n", "trials", "agree",
           "total_ops_mean"});
  std::size_t i = 0;
  for (unsigned threshold : thresholds) {
    for (unsigned period : periods) {
      const auto& s = summaries[i++];
      t.row()
          .cell(static_cast<std::uint64_t>(threshold))
          .cell(static_cast<std::uint64_t>(period))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(s.trials))
          .cell(s.agreement_rate(), 3)
          .cell(s.total_ops.mean, 0);
    }
  }
  h.emit(t, "E6c: voting-coin threshold/period ablation",
         "e6_voting_ablation");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e6_coin_conciliator", argc, argv);
  print_header("E6: CoinConciliator from the voting shared coin (Theorem 6)",
               "claims: conciliator agreement >= coin delta; overhead = 2 "
               "registers + 2 ops; coin cost dominates");
  coin_vs_impatient(h);
  firstmover_table(h);
  voting_ablation(h);
  return h.finish();
}
