// E3 — m-valued consensus.
//
// Paper claims (§1, §6): with the lg m + Θ(log log m) ratifier, m-valued
// consensus costs O(n log m) total work and O(log n + log m) individual
// work; the ratifier's Θ(log m) work dominates total cost for large m.
//
// Reproduced: (a) m-sweep at fixed n — total/(n·lg m) and indiv/lg m must
// flatten; (b) n-sweep at fixed m — total/n flat.
#include <memory>

#include "common.h"
#include "core/consensus/bitwise.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack(std::uint64_t m) {
  return [m](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_bollobas_quorums(m));
  };
}

void m_sweep() {
  table t({"m", "n", "trials", "indiv_mean", "indiv/(lgn+lgm)", "total_mean",
           "total/(n*lgm)", "agree"});
  const std::size_t n = 64;
  for (std::uint64_t m : {2ull, 4ull, 16ull, 256ull, 4096ull, 65536ull,
                          1ull << 20}) {
    std::size_t trials = 400;
    auto agg = run_trials(stack(m), analysis::input_pattern::random_m, n, m,
                          [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    double lgm = std::max(1u, ceil_log2(m));
    double lgn = lg_ceil(n);
    t.row()
        .cell(m)
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(agg.individual_ops.mean(), 2)
        .cell(agg.individual_ops.mean() / (lgn + lgm), 2)
        .cell(agg.total_ops.mean(), 1)
        .cell(agg.total_ops.mean() / (static_cast<double>(n) * lgm), 3)
        .cell(agg.agreement_rate(), 3);
  }
  t.emit("E3a: m-valued consensus, m-sweep at n = 64", "e3_m_sweep");
}

analysis::sim_object_builder bitwise(std::uint64_t m) {
  return [m](address_space& mem, std::size_t n) {
    return std::make_unique<bitwise_consensus<sim_env>>(
        mem, n, m, [&mem]() -> std::unique_ptr<deciding_object<sim_env>> {
          return make_impatient_consensus<sim_env>(mem,
                                                   make_binary_quorums());
        });
  };
}

void reduction_comparison() {
  // The classic alternative: reduce to ⌈lg m⌉ rounds of binary consensus.
  // Its repair scans cost O(n) per lost round, so the native m-valued
  // ratifier wins on individual work — the motivation for §6.
  table t({"m", "n", "protocol", "indiv_mean", "total_mean", "agree"});
  const std::size_t n = 32;
  for (std::uint64_t m : {4ull, 64ull, 1024ull}) {
    struct proto {
      const char* name;
      analysis::sim_object_builder build;
    };
    const proto protos[] = {
        {"native-bollobas", stack(m)},
        {"bitwise-reduction", bitwise(m)},
    };
    for (const auto& p : protos) {
      auto agg = run_trials(p.build, analysis::input_pattern::random_m, n,
                            m, [] { return std::make_unique<sim::random_oblivious>(); },
                            300);
      t.row()
          .cell(m)
          .cell(static_cast<std::uint64_t>(n))
          .cell(p.name)
          .cell(agg.individual_ops.mean(), 2)
          .cell(agg.total_ops.mean(), 1)
          .cell(agg.agreement_rate(), 3);
    }
  }
  t.emit("E3c: native m-valued stack vs bitwise reduction to binary",
         "e3_reduction");
}

void n_sweep() {
  table t({"n", "m", "trials", "indiv_mean", "total_mean", "total/(n*lgm)",
           "agree"});
  const std::uint64_t m = 256;
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    std::size_t trials = trials_for(n, 40'000);
    auto agg = run_trials(stack(m), analysis::input_pattern::random_m, n, m,
                          [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    double lgm = ceil_log2(m);
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(m)
        .cell(static_cast<std::uint64_t>(trials))
        .cell(agg.individual_ops.mean(), 2)
        .cell(agg.total_ops.mean(), 1)
        .cell(agg.total_ops.mean() / (static_cast<double>(n) * lgm), 3)
        .cell(agg.agreement_rate(), 3);
  }
  t.emit("E3b: m-valued consensus, n-sweep at m = 256", "e3_n_sweep");
}

}  // namespace

int main() {
  print_header("E3: m-valued consensus",
               "claims: E[total] = O(n log m), E[individual] = "
               "O(log n + log m); the ratifier dominates for large m");
  m_sweep();
  n_sweep();
  reduction_comparison();
  return 0;
}
