// E3 — m-valued consensus.
//
// Paper claims (§1, §6): with the lg m + Θ(log log m) ratifier, m-valued
// consensus costs O(n log m) total work and O(log n + log m) individual
// work; the ratifier's Θ(log m) work dominates total cost for large m.
//
// Reproduced: (a) m-sweep at fixed n — total/(n·lg m) and indiv/lg m must
// flatten; (b) n-sweep at fixed m — total/n flat.
#include <memory>

#include "common.h"
#include "core/consensus/bitwise.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack(std::uint64_t m) {
  // "impatient" with m > 2 resolves its adaptive quorums to Bollobás.
  return stack_builder<sim_env>(stack_for("impatient").with_m(m));
}

analysis::sim_object_builder bitwise(std::uint64_t m) {
  return [m](address_space& mem, std::size_t n) {
    return std::make_unique<bitwise_consensus<sim_env>>(
        mem, n, m, [&mem]() -> std::unique_ptr<deciding_object<sim_env>> {
          return make_impatient_consensus<sim_env>(mem,
                                                   make_binary_quorums());
        });
  };
}

void m_sweep(bench_harness& h) {
  const std::vector<std::uint64_t> ms = {2,    4,     16,       256,
                                         4096, 65536, 1ull << 20};
  const std::size_t n = 64;
  std::vector<trial_grid> grid;
  for (std::uint64_t m : ms) {
    grid.push_back({
        .label = "e3_m_sweep/m=" + std::to_string(m),
        .build = stack(m),
        .pattern = analysis::input_pattern::random_m,
        .n = n,
        .m = m,
        .trials = h.trials(400),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"m", "n", "trials", "indiv_mean", "indiv/(lgn+lgm)", "total_mean",
           "total/(n*lgm)", "agree"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& s = summaries[i];
    double lgm = std::max(1u, ceil_log2(ms[i]));
    double lgn = lg_ceil(n);
    t.row()
        .cell(ms[i])
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.max_individual_ops.mean, 2)
        .cell(s.max_individual_ops.mean / (lgn + lgm), 2)
        .cell(s.total_ops.mean, 1)
        .cell(s.total_ops.mean / (static_cast<double>(n) * lgm), 3)
        .cell(s.agreement_rate(), 3);
  }
  h.emit(t, "E3a: m-valued consensus, m-sweep at n = 64", "e3_m_sweep");
}

void n_sweep(bench_harness& h) {
  const std::vector<std::size_t> ns = {4, 16, 64, 256, 1024};
  const std::uint64_t m = 256;
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e3_n_sweep/n=" + std::to_string(n),
        .build = stack(m),
        .pattern = analysis::input_pattern::random_m,
        .n = n,
        .m = m,
        .trials = h.trials(trials_for(n, 40'000)),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "m", "trials", "indiv_mean", "total_mean", "total/(n*lgm)",
           "agree"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto& s = summaries[i];
    double lgm = ceil_log2(m);
    t.row()
        .cell(static_cast<std::uint64_t>(ns[i]))
        .cell(m)
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.max_individual_ops.mean, 2)
        .cell(s.total_ops.mean, 1)
        .cell(s.total_ops.mean / (static_cast<double>(ns[i]) * lgm), 3)
        .cell(s.agreement_rate(), 3);
  }
  h.emit(t, "E3b: m-valued consensus, n-sweep at m = 256", "e3_n_sweep");
}

void reduction_comparison(bench_harness& h) {
  // The classic alternative: reduce to ⌈lg m⌉ rounds of binary consensus.
  // Its repair scans cost O(n) per lost round, so the native m-valued
  // ratifier wins on individual work — the motivation for §6.
  const std::vector<std::uint64_t> ms = {4, 64, 1024};
  const std::size_t n = 32;
  struct proto {
    const char* name;
    std::function<analysis::sim_object_builder(std::uint64_t)> make;
  };
  const proto protos[] = {
      {"native-bollobas", [](std::uint64_t m) { return stack(m); }},
      {"bitwise-reduction", [](std::uint64_t m) { return bitwise(m); }},
  };
  std::vector<trial_grid> grid;
  for (std::uint64_t m : ms) {
    for (const auto& p : protos) {
      grid.push_back({
          .label = std::string("e3_reduction/") + p.name +
                   "/m=" + std::to_string(m),
          .build = p.make(m),
          .pattern = analysis::input_pattern::random_m,
          .n = n,
          .m = m,
          .trials = h.trials(300),
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"m", "n", "protocol", "indiv_mean", "total_mean", "agree"});
  std::size_t i = 0;
  for (std::uint64_t m : ms) {
    for (const auto& p : protos) {
      const auto& s = summaries[i++];
      t.row()
          .cell(m)
          .cell(static_cast<std::uint64_t>(n))
          .cell(p.name)
          .cell(s.max_individual_ops.mean, 2)
          .cell(s.total_ops.mean, 1)
          .cell(s.agreement_rate(), 3);
    }
  }
  h.emit(t, "E3c: native m-valued stack vs bitwise reduction to binary",
         "e3_reduction");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e3_mvalued_consensus", argc, argv);
  print_header("E3: m-valued consensus",
               "claims: E[total] = O(n log m), E[individual] = "
               "O(log n + log m); the ratifier dominates for large m");
  m_sweep(h);
  n_sweep(h);
  reduction_comparison(h);
  return h.finish();
}
