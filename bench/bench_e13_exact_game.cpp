// E13 — exact adversary optimization for the Theorem 7 conciliator.
//
// E1/E5 sample hand-written attackers; this bench SOLVES the scheduling
// game: memoized expectiminimax over the conciliator's canonical state
// space gives the exact minimum agreement probability achievable by the
// strongest in-model adversary (adaptive minus coin visibility — at
// least as strong as every location-oblivious adversary the theorem
// quantifies over).  The value must sit above δ = (1 − e^{-1/4})/4 for
// every input split; the gap to the sampled attackers (E5) shows how
// close the hand-written strategies come to optimal play.
//
// No trials here — the game is solved exactly — but the harness still
// provides the shared CLI and JSON artifact emission.
#include "check/conciliator_game.h"

#include "common.h"

namespace {

using namespace modcon;
using namespace modcon::bench;

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e13_exact_game", argc, argv);
  print_header("E13: exact worst-case agreement (expectiminimax)",
               "claim (Theorem 7): >= 0.0553 against every in-model "
               "adversary; here solved exactly, not sampled");
  {
    table t({"n", "split", "exact_worst_agreement", "delta", "holds",
             "memo_states"});
    for (std::size_t n : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
      for (std::size_t a : {n / 2, std::size_t{1}}) {
        if (a == 0 || a >= n) continue;
        auto g = check::exact_worst_case_agreement(a, n - a);
        t.row()
            .cell(static_cast<std::uint64_t>(n))
            .cell(std::to_string(a) + "/" + std::to_string(n - a))
            .cell(g.value, 4)
            .cell(0.0553, 4)
            .cell(g.value >= 0.0553 ? "yes" : "NO")
            .cell(static_cast<std::uint64_t>(g.states));
        if (a == n / 2 && a == 1) break;  // avoid duplicate row for n = 2
      }
    }
    h.emit(t, "E13a: exact value of the conciliation game (doubling schedule)",
           "e13_exact");
  }
  {
    table t({"growth_g", "n=4 exact_worst", "n=6 exact_worst"});
    struct g_case {
      const char* label;
      impatience_schedule s;
    };
    for (const auto& g :
         {g_case{"1.5", {3, 2}}, g_case{"2 (paper)", {2, 1}},
          g_case{"3", {3, 1}}, g_case{"4", {4, 1}}, g_case{"8", {8, 1}}}) {
      t.row()
          .cell(g.label)
          .cell(check::exact_worst_case_agreement(2, 2, g.s).value, 4)
          .cell(check::exact_worst_case_agreement(3, 3, g.s).value, 4);
    }
    h.emit(t, "E13b: exact worst-case agreement vs growth factor",
           "e13_growth");
  }
  return h.finish();
}
