// E4 — §6.2: the ratifier implementation menu.
//
// Paper claims:
//   choice 1 (binary):     3 registers, <= 4 ops;
//   choice 2 (Bollobás):   lg m + Θ(log log m) registers/ops — optimal by
//                          Theorem 9 (C(k,⌊k/2⌋) >= m is the best possible
//                          for a fixed |W| + |R| budget);
//   choice 3 (bit-vector): exactly 2⌈lg m⌉ + 1 registers, <= 2⌈lg m⌉ + 2
//                          ops;
//   choice 4 (cheap collect): 4 ops for any m (unrealistic model).
//
// Reproduced: register/work table over an m-sweep, measured on real
// executions, plus the Bollobás-sum accounting (Σ 1/C(a+b,a) <= 1, with
// the optimal scheme near 1).
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/ratifier/cheap_collect_ratifier.h"
#include "core/ratifier/collect_ratifier.h"
#include "core/ratifier/quorum_ratifier.h"
#include "quorum/verify.h"
#include "sim/adversaries/adversaries.h"
#include "util/binomial.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder ratifier(std::shared_ptr<const quorum_system> qs) {
  return [qs](address_space& mem, std::size_t) {
    return std::make_unique<quorum_ratifier<sim_env>>(mem, qs);
  };
}

void space_work_table(bench_harness& h) {
  struct cell_info {
    std::uint64_t m;
    std::string scheme;
    std::uint64_t registers;
    std::string work_bound;
    std::string bollobas;
  };
  std::vector<cell_info> infos;
  std::vector<trial_grid> grid;
  const std::size_t n = 16;
  for (std::uint64_t m : {2ull, 4ull, 16ull, 256ull, 4096ull, 65536ull,
                          1ull << 20, 1ull << 24}) {
    struct scheme {
      const char* name;
      std::shared_ptr<const quorum_system> qs;
    };
    std::vector<scheme> schemes;
    if (m == 2) schemes.push_back({"binary", make_binary_quorums()});
    schemes.push_back({"bollobas", make_bollobas_quorums(m)});
    schemes.push_back({"bitvector", make_bitvector_quorums(m)});
    for (auto& s : schemes) {
      infos.push_back(
          {m, s.name, s.qs->pool_size() + 1,
           std::to_string(s.qs->max_write_quorum() + s.qs->max_read_quorum() +
                          2),
           [&] {
             char buf[32];
             std::snprintf(buf, sizeof buf, "%.4f",
                           bollobas_sum(*s.qs, 4096));
             return std::string(buf);
           }()});
      grid.push_back({
          .label = "e4_space/" + std::string(s.name) + "/m=" +
                   std::to_string(m),
          .build = ratifier(s.qs),
          .pattern = analysis::input_pattern::random_m,
          .n = n,
          .m = m,
          .trials = h.trials(300),
      });
    }
    // Cheap-collect: 4 ops regardless of m, in its own cost model.
    infos.push_back({m, "cheap-collect", n + 1, "4", "-"});
    grid.push_back({
        .label = "e4_space/cheap-collect/m=" + std::to_string(m),
        .build = [](address_space& mem, std::size_t nn)
            -> std::unique_ptr<deciding_object<sim_env>> {
          return std::make_unique<cheap_collect_ratifier<sim_env>>(mem, nn);
        },
        .pattern = analysis::input_pattern::random_m,
        .n = n,
        .m = m,
        .trials = h.trials(300),
    });
    // Announce-array ratifier: the same construction with the collect
    // priced as n reads — what cheap-collect really costs on registers.
    infos.push_back({m, "announce-array", n + 1, std::to_string(n + 3), "-"});
    grid.push_back({
        .label = "e4_space/announce-array/m=" + std::to_string(m),
        .build = [](address_space& mem, std::size_t nn)
            -> std::unique_ptr<deciding_object<sim_env>> {
          return std::make_unique<collect_ratifier<sim_env>>(mem, nn);
        },
        .pattern = analysis::input_pattern::random_m,
        .n = n,
        .m = m,
        .trials = h.trials(300),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"m", "scheme", "registers", "lg m", "indiv_max_measured",
           "work_bound", "bollobas_sum"});
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const auto& info = infos[i];
    const auto& s = summaries[i];
    t.row()
        .cell(info.m)
        .cell(info.scheme)
        .cell(info.registers)
        .cell(static_cast<std::uint64_t>(std::max(1u, ceil_log2(info.m))))
        .cell(s.max_individual_ops.max, 0)
        .cell(info.work_bound)
        .cell(info.bollobas);
  }
  h.emit(t, "E4a: ratifier space and work per scheme (§6.2 menu)",
         "e4_space");
}

void optimality_table(bench_harness& h) {
  // k(m) for the Bollobás scheme against lg m: the excess is Θ(log log m)
  // (Theorem 10), and one register fewer is impossible (Theorem 9).
  table t({"m", "k_bollobas", "lg m", "excess", "2*lg m (bitvector)",
           "C(k-1, (k-1)/2) < m"});
  for (unsigned bits = 1; bits <= 40; bits += 3) {
    std::uint64_t m = 1ull << bits;
    auto qs = make_bollobas_quorums(m);
    unsigned k = qs->pool_size();
    t.row()
        .cell(m)
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(bits))
        .cell(static_cast<std::uint64_t>(k - bits))
        .cell(static_cast<std::uint64_t>(2 * bits))
        .cell(binomial(k - 1, (k - 1) / 2) < m ? "yes" : "NO");
  }
  h.emit(t, "E4b: Bollobás pool size k = lg m + Θ(log log m), minimality",
         "e4_optimality");
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e4_ratifier_space", argc, argv);
  print_header("E4: deterministic m-valued ratifier (§6.2, Theorems 8-10)",
               "claims: binary = 3 regs / 4 ops; Bollobás = lg m + "
               "Θ(log log m); bit-vector = 2 lg m + 1; cheap-collect = 4 ops");
  space_work_table(h);
  optimality_table(h);
  return h.finish();
}
