// E5 — model ablation: how adversary strength affects the conciliator.
//
// Paper's model hierarchy (§2.1): Theorem 7 holds against every
// location-oblivious adversary; the probabilistic-write assumption means
// no in-model adversary can condition on coin outcomes.  We measure the
// agreement frequency of the impatient conciliator under the whole
// scheduler portfolio, plus the OUT-OF-MODEL omniscient splitter, which
// sees coin outcomes and should crush agreement — demonstrating the model
// restriction is necessary, not an analysis artifact.
#include <memory>

#include "common.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e5_adversary_ablation", argc, argv);
  print_header("E5: adversary-strength ablation on the conciliator",
               "claims: agreement >= 0.0553 for every in-model scheduler; "
               "collapses once the adversary can see local coins "
               "(out-of-model)");
  constexpr double kDelta = 0.0553;
  struct row_case {
    const char* name;
    const char* power;
    bool in_model;
    adversary_factory make;
  };
  const row_case cases[] = {
      {"round-robin", "oblivious", true,
       [] { return std::make_unique<sim::round_robin>(); }},
      {"random", "oblivious", true, random_scheduler()},
      {"sequential", "oblivious", true,
       [] {
         return std::make_unique<sim::fixed_order>(
             sim::fixed_order::mode::sequential);
       }},
      {"noisy(1.0)", "oblivious", true,
       [] { return std::make_unique<sim::noisy>(1.0); }},
      {"quantum(4)", "oblivious", true,
       [] { return std::make_unique<sim::quantum_sched>(4); }},
      {"priority", "oblivious", true,
       [] { return std::make_unique<sim::priority_sched>(); }},
      {"greedy-overwrite", "location-oblivious", true,
       [] { return std::make_unique<sim::greedy_overwrite>(0); }},
      {"stockpiler", "location-oblivious", true,
       [] { return std::make_unique<sim::stockpiler>(0); }},
      {"omniscient-splitter", "omniscient", false,
       [] { return std::make_unique<sim::omniscient_splitter>(0); }},
  };
  const std::vector<std::size_t> ns = {8, 32, 128};

  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    for (const auto& c : cases) {
      grid.push_back({
          .label = std::string("e5_ablation/") + c.name +
                   "/n=" + std::to_string(n),
          .build = impatient(),
          .make_adversary = c.make,
          .n = n,
          .trials = h.trials(trials_for(n, 40'000)),
      });
    }
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"adversary", "power", "in_model", "n", "trials", "agree",
           "wilson_lo", "above_delta"});
  std::size_t i = 0;
  for (std::size_t n : ns) {
    for (const auto& c : cases) {
      const auto& s = summaries[i++];
      auto ci = s.agreement_ci();
      t.row()
          .cell(c.name)
          .cell(c.power)
          .cell(c.in_model ? "yes" : "no")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(s.trials))
          .cell(ci.estimate, 3)
          .cell(ci.lo, 3)
          .cell(c.in_model ? (ci.lo >= kDelta ? "yes" : "NO")
                           : (ci.hi < kDelta ? "collapsed" : "survived?"));
    }
  }
  h.emit(t, "E5: conciliator agreement under the scheduler portfolio",
         "e5_ablation");
  return h.finish();
}
