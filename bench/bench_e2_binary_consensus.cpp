// E2 — Binary consensus in the probabilistic-write model.
//
// Paper claims (§1, §4.1 + Theorem 7 + §6.2 choice 1): expected
// individual work O(log n) and expected total work O(n) — the first
// weak-adversary protocol with optimal total work, matching the
// Attiya–Censor lower bound.
//
// Reproduced: n-sweep of the unbounded construction (impatient
// conciliators + binary quorum ratifiers).  The normalized columns
// indiv/lg n and total/n must stay bounded as n grows (shape check).
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

}  // namespace

int main() {
  print_header("E2: binary consensus (unbounded construction)",
               "claims: E[individual] = O(log n), E[total] = O(n); "
               "normalized columns must stay bounded");
  table t({"n", "trials", "indiv_mean", "indiv/lgn", "indiv_p99", "total_mean",
           "total/n", "agree", "decided"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                        2048u, 4096u, 8192u}) {
    std::size_t trials = trials_for(n, 60'000);
    auto agg = run_trials(stack(), analysis::input_pattern::half_half, n, 2,
                          [] { return std::make_unique<sim::random_oblivious>(); },
                          trials);
    double lgn = n > 1 ? static_cast<double>(lg_ceil(n)) : 1.0;
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(agg.individual_ops.mean(), 2)
        .cell(agg.individual_ops.mean() / lgn, 2)
        .cell(agg.individual_samples.quantile(0.99), 0)
        .cell(agg.total_ops.mean(), 1)
        .cell(agg.total_ops.mean() / static_cast<double>(n), 2)
        .cell(agg.agreement_rate(), 3)
        .cell(static_cast<std::uint64_t>(agg.all_decided));
  }
  t.emit("E2: binary consensus cost (random scheduler, half/half inputs)",
         "e2_binary");
  return 0;
}
