// E2 — Binary consensus in the probabilistic-write model.
//
// Paper claims (§1, §4.1 + Theorem 7 + §6.2 choice 1): expected
// individual work O(log n) and expected total work O(n) — the first
// weak-adversary protocol with optimal total work, matching the
// Attiya–Censor lower bound.
//
// Reproduced: n-sweep of the unbounded construction (impatient
// conciliators + binary quorum ratifiers).  The normalized columns
// indiv/lg n and total/n must stay bounded as n grows (shape check).
#include <memory>

#include "common.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using namespace modcon::bench;
using sim::sim_env;

analysis::sim_object_builder stack() {
  return stack_builder<sim_env>(stack_for("impatient"));
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness h("e2_binary_consensus", argc, argv);
  print_header("E2: binary consensus (unbounded construction)",
               "claims: E[individual] = O(log n), E[total] = O(n); "
               "normalized columns must stay bounded");
  const std::vector<std::size_t> ns = {2,   4,    8,    16,   32,  64,  128,
                                       256, 512, 1024, 2048, 4096, 8192};
  std::vector<trial_grid> grid;
  for (std::size_t n : ns) {
    grid.push_back({
        .label = "e2_binary/n=" + std::to_string(n),
        .build = stack(),
        .n = n,
        .trials = h.trials(trials_for(n, 60'000)),
    });
  }
  auto summaries = h.run_grid(std::move(grid));

  table t({"n", "trials", "indiv_mean", "indiv/lgn", "indiv_p99", "total_mean",
           "total/n", "agree", "decided"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::size_t n = ns[i];
    const auto& s = summaries[i];
    double lgn = n > 1 ? static_cast<double>(lg_ceil(n)) : 1.0;
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(s.trials))
        .cell(s.max_individual_ops.mean, 2)
        .cell(s.max_individual_ops.mean / lgn, 2)
        .cell(s.max_individual_ops.p99, 0)
        .cell(s.total_ops.mean, 1)
        .cell(s.total_ops.mean / static_cast<double>(n), 2)
        .cell(s.agreement_rate(), 3)
        .cell(static_cast<std::uint64_t>(s.all_decided));
  }
  h.emit(t, "E2: binary consensus cost (random scheduler, half/half inputs)",
         "e2_binary");
  return h.finish();
}
